package stats

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/measure"
	"repro/internal/standards"
	"repro/internal/webidl"
)

// Visit is one completed (site, case, round) crawl: the unit fed to an
// Aggregate. Features ownership transfers to the aggregate — callers must
// not mutate the bitset after the call.
type Visit struct {
	Case        measure.Case
	Round       int
	Site        int
	Features    measure.Bitset
	Invocations int64
	Pages       int
}

// Batch groups per-visit events so a producer takes each stripe lock once
// per flush instead of once per visit. Within a batch, visits are applied
// first, then failures, then site ends — so a batch may carry a site's last
// visits and its end marker together.
type Batch struct {
	Visits []Visit
	// Fails lists sites a visit of which failed (making them unmeasurable).
	Fails []int
	// Ends lists sites whose visits are all in (this batch or earlier
	// ones); each is folded into the derived tallies and its accumulator
	// freed.
	Ends []int
}

// Config sizes an Aggregate.
type Config struct {
	// NumFeatures is the corpus size.
	NumFeatures int
	// NumSites is the site-list size.
	NumSites int
	// Standards[featureID] is the feature's standard; it drives the
	// standard-level tallies. Must have NumFeatures entries.
	Standards []standards.Abbrev
	// Cases are the browser configurations the aggregate tracks, in the
	// survey's canonical order. Visits for other cases are rejected.
	Cases []measure.Case
	// Rounds is the maximum round count; required with KeepLog (it sizes
	// the per-visit grid), advisory otherwise.
	Rounds int
	// Stripes is the lock-stripe count; default 16.
	Stripes int
	// KeepLog retains every visit's feature set so Log() can freeze the
	// aggregate into a full measure.Log. Costs O(cases × rounds × sites)
	// memory; spill-only pipelines leave it off.
	KeepLog bool
	// PublishEvery, when positive, auto-publishes a fresh Snapshot after
	// every N folded sites on the per-visit path (EndSite/Apply). Merge
	// always publishes regardless; 0 leaves the per-visit path snapshot-
	// free until someone calls Publish or Snapshot.
	PublishEvery int
	// Domains[siteIndex] is the site's domain; required with KeepLog
	// (the log records domains), ignored otherwise.
	Domains []string
}

// StandardsOf extracts the per-feature standard mapping Config.Standards
// wants from a WebIDL registry.
func StandardsOf(reg *webidl.Registry) []standards.Abbrev {
	out := make([]standards.Abbrev, len(reg.Features))
	for i, f := range reg.Features {
		out[i] = f.Standard
	}
	return out
}

// stripe is one lock-striped partition of the aggregate. Sites map to
// stripes by index, so producers working disjoint site ranges never
// contend. The padding keeps neighboring stripe locks off one cache line.
type stripe struct {
	mu sync.Mutex
	// invocations and pages are per-case partial sums for the stripe's
	// sites; maxRound is the per-case highest round seen (-1 when none).
	invocations []int64
	pages       []int64
	maxRound    []int
	// open holds the accumulators of the stripe's in-flight sites: state
	// between a site's first visit and its EndSite. Its size is bounded
	// by the number of producers, never by the survey's site count.
	open map[int]*openSite
	_    [64]byte
}

// openSite accumulates one site's visits until EndSite folds it.
type openSite struct {
	// unions[caseIdx] is the union of the site's feature sets across
	// rounds; nil until the case's first visit.
	unions []measure.Bitset
	// defRounds[round] is the default case's per-round feature set,
	// kept so the new-standards-per-round fold walks rounds in order
	// regardless of arrival order.
	defRounds []measure.Bitset
	recorded  bool
	failed    bool
}

// Aggregate is the lock-striped, concurrently mergeable statistics form of
// a survey. Producers feed it visits from many goroutines (calls for one
// site must be ordered; see the package comment); afterwards its query
// methods answer every aggregate question internal/analysis asks, and — in
// keep-log mode — Log() freezes the exact measure.Log the sequential
// crawler would have produced, because every grid cell is written by at
// most one visit and all cross-visit state is commutative.
type Aggregate struct {
	cfg     Config
	caseIdx map[measure.Case]int
	defIdx  int // index of measure.CaseDefault in cfg.Cases; -1 when absent

	stripes []stripe

	// Derived tallies, folded once per site at EndSite. Guarded by foldMu;
	// fold traffic is per-site, not per-visit, so the single lock is cold.
	foldMu       sync.Mutex
	featureSites [][]int // [caseIdx][featureID] → sites using the feature
	stdSites     []map[standards.Abbrev]int
	// blockedPairs[caseIdx][std] counts sites that used std in the default
	// case but executed none of its features under the case — the §5.1
	// block-rate numerator for every (default, case) pair.
	blockedPairs []map[standards.Abbrev]int
	// complexity[n] counts measured sites using exactly n standards in the
	// default case (Figure 8's population).
	complexity map[int]int
	// nspSums[round] sums, over measured sites, the standards first seen
	// in the round (default case); nspMeasured is the population.
	nspSums     []int64
	nspMeasured int
	measured    int

	// Keep-log state: features[caseIdx][round][site] is the visit's
	// feature set (guarded by the site's stripe lock); recorded/failed
	// reproduce the sequential crawler's Measured bookkeeping.
	features [][][]measure.Bitset
	recorded []bool
	failed   []bool

	// Epoch-snapshot read path (snapshot.go). pubMu serializes snapshot
	// publication with Merge, so every published snapshot reflects an
	// integer number of completed merges; snap is the RCU pointer readers
	// load lock-free; epochSeq (guarded by pubMu) numbers publications;
	// endsSincePub (guarded by foldMu) drives Config.PublishEvery.
	pubMu        sync.Mutex
	snap         atomic.Pointer[Snapshot]
	epochSeq     uint64
	endsSincePub int
}

// New builds an aggregate for a study.
func New(cfg Config) (*Aggregate, error) {
	if cfg.NumFeatures <= 0 {
		return nil, fmt.Errorf("stats: config requires a positive feature count")
	}
	if cfg.NumSites < 0 {
		return nil, fmt.Errorf("stats: negative site count %d", cfg.NumSites)
	}
	if len(cfg.Standards) != cfg.NumFeatures {
		return nil, fmt.Errorf("stats: %d standards mappings for %d features", len(cfg.Standards), cfg.NumFeatures)
	}
	if len(cfg.Cases) == 0 {
		return nil, fmt.Errorf("stats: config requires at least one case")
	}
	if cfg.Stripes <= 0 {
		cfg.Stripes = 16
	}
	if cfg.KeepLog {
		if len(cfg.Domains) != cfg.NumSites {
			return nil, fmt.Errorf("stats: keep-log aggregate needs %d domains, got %d", cfg.NumSites, len(cfg.Domains))
		}
		if cfg.Rounds <= 0 {
			return nil, fmt.Errorf("stats: keep-log aggregate requires a positive round count")
		}
	}
	a := &Aggregate{
		cfg:          cfg,
		caseIdx:      make(map[measure.Case]int, len(cfg.Cases)),
		defIdx:       -1,
		stripes:      make([]stripe, cfg.Stripes),
		featureSites: make([][]int, len(cfg.Cases)),
		stdSites:     make([]map[standards.Abbrev]int, len(cfg.Cases)),
		blockedPairs: make([]map[standards.Abbrev]int, len(cfg.Cases)),
		complexity:   make(map[int]int),
	}
	for ci, cs := range cfg.Cases {
		if _, dup := a.caseIdx[cs]; dup {
			return nil, fmt.Errorf("stats: duplicate case %q", cs)
		}
		a.caseIdx[cs] = ci
		if cs == measure.CaseDefault {
			a.defIdx = ci
		}
		a.featureSites[ci] = make([]int, cfg.NumFeatures)
		a.stdSites[ci] = make(map[standards.Abbrev]int)
		a.blockedPairs[ci] = make(map[standards.Abbrev]int)
	}
	for si := range a.stripes {
		a.stripes[si].invocations = make([]int64, len(cfg.Cases))
		a.stripes[si].pages = make([]int64, len(cfg.Cases))
		a.stripes[si].maxRound = make([]int, len(cfg.Cases))
		for ci := range cfg.Cases {
			a.stripes[si].maxRound[ci] = -1
		}
		a.stripes[si].open = make(map[int]*openSite)
	}
	if cfg.KeepLog {
		a.features = make([][][]measure.Bitset, len(cfg.Cases))
		for ci := range a.features {
			a.features[ci] = make([][]measure.Bitset, cfg.Rounds)
			for r := range a.features[ci] {
				a.features[ci][r] = make([]measure.Bitset, cfg.NumSites)
			}
		}
		a.recorded = make([]bool, cfg.NumSites)
		a.failed = make([]bool, cfg.NumSites)
	}
	return a, nil
}

// stripeOf maps a site index to its stripe.
func (a *Aggregate) stripeOf(site int) *stripe { return &a.stripes[site%len(a.stripes)] }

// validate rejects a visit the aggregate cannot hold.
func (a *Aggregate) validate(v Visit) error {
	if _, ok := a.caseIdx[v.Case]; !ok {
		return fmt.Errorf("stats: visit for case %q not tracked by this aggregate", v.Case)
	}
	if v.Site < 0 || v.Site >= a.cfg.NumSites {
		return fmt.Errorf("stats: visit site %d outside [0,%d)", v.Site, a.cfg.NumSites)
	}
	if v.Round < 0 {
		return fmt.Errorf("stats: negative visit round %d", v.Round)
	}
	if a.cfg.KeepLog && v.Round >= a.cfg.Rounds {
		return fmt.Errorf("stats: visit round %d outside the keep-log grid's %d rounds", v.Round, a.cfg.Rounds)
	}
	return nil
}

// Apply folds one batch: visits first, then failures, then site ends.
// Visits are grouped by stripe so each stripe lock is taken at most once
// per batch regardless of batch size. The whole batch is validated before
// any of it is applied.
func (a *Aggregate) Apply(b Batch) error {
	for _, v := range b.Visits {
		if err := a.validate(v); err != nil {
			return err
		}
	}
	for _, site := range b.Fails {
		if site < 0 || site >= a.cfg.NumSites {
			return fmt.Errorf("stats: site %d outside [0,%d)", site, a.cfg.NumSites)
		}
	}
	for _, site := range b.Ends {
		if site < 0 || site >= a.cfg.NumSites {
			return fmt.Errorf("stats: site %d outside [0,%d)", site, a.cfg.NumSites)
		}
	}

	groups := make(map[*stripe][]int, len(a.stripes))
	for i, v := range b.Visits {
		st := a.stripeOf(v.Site)
		groups[st] = append(groups[st], i)
	}
	for st, idxs := range groups {
		st.mu.Lock()
		for _, i := range idxs {
			a.applyVisitLocked(st, b.Visits[i])
		}
		st.mu.Unlock()
	}
	for _, site := range b.Fails {
		st := a.stripeOf(site)
		st.mu.Lock()
		a.applyFailLocked(st, site)
		st.mu.Unlock()
	}
	if len(b.Ends) == 0 {
		return nil
	}
	folds := make([]*openSite, 0, len(b.Ends))
	for _, site := range b.Ends {
		st := a.stripeOf(site)
		st.mu.Lock()
		if o := st.open[site]; o != nil {
			delete(st.open, site)
			folds = append(folds, o)
		}
		st.mu.Unlock()
	}
	a.foldMu.Lock()
	for _, o := range folds {
		a.foldLocked(o)
	}
	a.foldMu.Unlock()
	a.maybeAutoPublish(len(folds))
	return nil
}

// AddVisit records one completed visit.
func (a *Aggregate) AddVisit(v Visit) error {
	if err := a.validate(v); err != nil {
		return err
	}
	st := a.stripeOf(v.Site)
	st.mu.Lock()
	a.applyVisitLocked(st, v)
	st.mu.Unlock()
	return nil
}

// AddFailure marks a site unmeasurable (one of its visits failed).
func (a *Aggregate) AddFailure(site int) error {
	if site < 0 || site >= a.cfg.NumSites {
		return fmt.Errorf("stats: failure site %d outside [0,%d)", site, a.cfg.NumSites)
	}
	st := a.stripeOf(site)
	st.mu.Lock()
	a.applyFailLocked(st, site)
	st.mu.Unlock()
	return nil
}

// EndSite folds a completed site's accumulator into the derived tallies.
// Ending a site that never produced a visit or failure is a no-op.
func (a *Aggregate) EndSite(site int) error {
	return a.Apply(Batch{Ends: []int{site}})
}

// EndOpenSites folds every still-open site. FromSpills calls it after
// replaying streams that lack end markers (a crashed shard's spill); a
// pipeline run ends each site as its worker finishes it instead.
func (a *Aggregate) EndOpenSites() {
	var folds []*openSite
	for si := range a.stripes {
		st := &a.stripes[si]
		st.mu.Lock()
		for site, o := range st.open {
			delete(st.open, site)
			folds = append(folds, o)
		}
		st.mu.Unlock()
	}
	a.foldMu.Lock()
	for _, o := range folds {
		a.foldLocked(o)
	}
	a.foldMu.Unlock()
	a.maybeAutoPublish(len(folds))
}

func (a *Aggregate) applyVisitLocked(st *stripe, v Visit) {
	ci := a.caseIdx[v.Case]
	st.invocations[ci] += v.Invocations
	st.pages[ci] += int64(v.Pages)
	if v.Round > st.maxRound[ci] {
		st.maxRound[ci] = v.Round
	}
	o := st.open[v.Site]
	if o == nil {
		o = &openSite{unions: make([]measure.Bitset, len(a.cfg.Cases))}
		st.open[v.Site] = o
	}
	o.recorded = true
	if o.unions[ci] == nil {
		o.unions[ci] = v.Features.Clone()
	} else {
		o.unions[ci].Or(v.Features)
	}
	if ci == a.defIdx {
		for len(o.defRounds) <= v.Round {
			o.defRounds = append(o.defRounds, nil)
		}
		o.defRounds[v.Round] = v.Features
	}
	if a.cfg.KeepLog {
		a.features[ci][v.Round][v.Site] = v.Features
		a.recorded[v.Site] = true
	}
}

func (a *Aggregate) applyFailLocked(st *stripe, site int) {
	o := st.open[site]
	if o == nil {
		o = &openSite{unions: make([]measure.Bitset, len(a.cfg.Cases))}
		st.open[site] = o
	}
	o.failed = true
	if a.cfg.KeepLog {
		a.failed[site] = true
	}
}

// foldLocked retires one site: its per-case unions become feature- and
// standard-site increments, its default set drives the block-pair,
// complexity, and new-standards tallies. Must hold foldMu.
//
// The tallies mirror the cold analysis scan exactly: union-based counts
// include partially measured (failed) sites, while complexity and
// new-standards-per-round count only measured sites, and every site with a
// default-case observation contributes to the block pairs — a case with no
// observations blocks all of the site's default standards, matching the
// "no features executed" definition.
func (a *Aggregate) foldLocked(o *openSite) {
	measured := o.recorded && !o.failed
	if measured {
		a.measured++
	}

	sets := make([]map[standards.Abbrev]bool, len(a.cfg.Cases))
	for ci, u := range o.unions {
		if u == nil {
			continue
		}
		set := make(map[standards.Abbrev]bool)
		fs := a.featureSites[ci]
		stdOf := a.cfg.Standards
		u.ForEach(a.cfg.NumFeatures, func(id int) {
			fs[id]++
			set[stdOf[id]] = true
		})
		for std := range set {
			a.stdSites[ci][std]++
		}
		sets[ci] = set
	}

	if a.defIdx < 0 || sets[a.defIdx] == nil {
		return
	}
	defSet := sets[a.defIdx]
	for ci := range a.cfg.Cases {
		blocked := a.blockedPairs[ci]
		for std := range defSet {
			if sets[ci] == nil || !sets[ci][std] {
				blocked[std]++
			}
		}
	}
	if !measured {
		return
	}
	a.complexity[len(defSet)]++
	seen := make(map[standards.Abbrev]bool, len(defSet))
	for r, sf := range o.defRounds {
		if sf == nil {
			continue
		}
		newStd := 0
		sf.ForEach(a.cfg.NumFeatures, func(id int) {
			if std := a.cfg.Standards[id]; !seen[std] {
				seen[std] = true
				newStd++
			}
		})
		for len(a.nspSums) <= r {
			a.nspSums = append(a.nspSums, 0)
		}
		a.nspSums[r] += int64(newStd)
	}
	a.nspMeasured++
}

// OpenSites reports how many sites are mid-flight (visits recorded, not yet
// ended). It is zero after a completed run.
func (a *Aggregate) OpenSites() int {
	n := 0
	for si := range a.stripes {
		st := &a.stripes[si]
		st.mu.Lock()
		n += len(st.open)
		st.mu.Unlock()
	}
	return n
}

// NumFeatures returns the corpus size.
func (a *Aggregate) NumFeatures() int { return a.cfg.NumFeatures }

// NumSites returns the site-list size.
func (a *Aggregate) NumSites() int { return a.cfg.NumSites }

// Cases returns the tracked cases in canonical order.
func (a *Aggregate) Cases() []measure.Case {
	return append([]measure.Case(nil), a.cfg.Cases...)
}

// HasCase reports whether the aggregate tracks the case.
func (a *Aggregate) HasCase(c measure.Case) bool {
	_, ok := a.caseIdx[c]
	return ok
}

// FeatureSites returns, per feature ID, the number of sites on which the
// feature was observed at least once under the case — the same counts
// measure.Log.FeatureSites derives by rescanning. Untracked cases return
// all zeros, like a log the case never reached.
func (a *Aggregate) FeatureSites(c measure.Case) []int {
	out := make([]int, a.cfg.NumFeatures)
	ci, ok := a.caseIdx[c]
	if !ok {
		return out
	}
	a.foldMu.Lock()
	copy(out, a.featureSites[ci])
	a.foldMu.Unlock()
	return out
}

// StandardSites returns the number of sites using each standard under the
// case (absent standards are simply missing, as in the cold scan).
func (a *Aggregate) StandardSites(c measure.Case) map[standards.Abbrev]int {
	out := make(map[standards.Abbrev]int)
	ci, ok := a.caseIdx[c]
	if !ok {
		return out
	}
	a.foldMu.Lock()
	for std, n := range a.stdSites[ci] {
		out[std] = n
	}
	a.foldMu.Unlock()
	return out
}

// BlockedSites returns, per standard, the number of sites that used the
// standard in the default case but executed none of its features under c —
// the block-rate numerator. A case the aggregate never tracked blocks
// everything (no feature of it ever executed), so the default-case counts
// are returned, matching the cold scan over a log without the case.
func (a *Aggregate) BlockedSites(c measure.Case) map[standards.Abbrev]int {
	if _, ok := a.caseIdx[c]; !ok {
		return a.StandardSites(measure.CaseDefault)
	}
	out := make(map[standards.Abbrev]int)
	ci := a.caseIdx[c]
	a.foldMu.Lock()
	for std, n := range a.blockedPairs[ci] {
		out[std] = n
	}
	a.foldMu.Unlock()
	return out
}

// Complexity returns, per measured site with default-case observations, the
// number of standards the site used — ascending, since the aggregate folds
// sites in completion order and keeps only tallies. Every consumer of the
// series (CDFs, histograms) is order-insensitive.
func (a *Aggregate) Complexity() []int {
	a.foldMu.Lock()
	var out []int
	for n, count := range a.complexity {
		for i := 0; i < count; i++ {
			out = append(out, n)
		}
	}
	a.foldMu.Unlock()
	sort.Ints(out)
	return out
}

// NewStandardsPerRound returns Table 3's series: the average number of
// standards first observed in each default-case round across measured
// sites, identical to the cold scan (nil when the default case was never
// observed).
func (a *Aggregate) NewStandardsPerRound() []float64 {
	if a.defIdx < 0 {
		return nil
	}
	maxRound := -1
	for si := range a.stripes {
		st := &a.stripes[si]
		st.mu.Lock()
		if mr := st.maxRound[a.defIdx]; mr > maxRound {
			maxRound = mr
		}
		st.mu.Unlock()
	}
	if maxRound < 0 {
		return nil
	}
	out := make([]float64, maxRound+1)
	a.foldMu.Lock()
	for r := range out {
		if r < len(a.nspSums) {
			out[r] = float64(a.nspSums[r])
		}
	}
	measured := a.nspMeasured
	a.foldMu.Unlock()
	if measured == 0 {
		return out
	}
	for i := range out {
		out[i] /= float64(measured)
	}
	return out
}

// MeasuredCount returns how many sites produced measurements and never
// failed a visit.
func (a *Aggregate) MeasuredCount() int {
	a.foldMu.Lock()
	defer a.foldMu.Unlock()
	return a.measured
}

// Totals returns the survey-wide invocation and page-visit sums (Table 1).
func (a *Aggregate) Totals() (invocations, pages int64) {
	for si := range a.stripes {
		st := &a.stripes[si]
		st.mu.Lock()
		for ci := range a.cfg.Cases {
			invocations += st.invocations[ci]
			pages += st.pages[ci]
		}
		st.mu.Unlock()
	}
	return invocations, pages
}

// Log freezes a keep-log aggregate into a measure.Log identical to the one
// the sequential crawler produces for the same seed: per-case round counts
// grow only as far as data was recorded, and a site is Measured exactly
// when it produced at least one observation and never failed a visit. It
// returns nil for spill-only aggregates, which never held the grid.
//
// Log must only be called after all producers have finished.
func (a *Aggregate) Log() *measure.Log {
	if !a.cfg.KeepLog {
		return nil
	}
	l := measure.NewLog(a.cfg.NumFeatures, a.cfg.Domains)
	for ci, cs := range a.cfg.Cases {
		maxRound := -1
		for si := range a.stripes {
			if mr := a.stripes[si].maxRound[ci]; mr > maxRound {
				maxRound = mr
			}
		}
		if maxRound < 0 {
			continue
		}
		l.EnsureRound(cs, maxRound)
		cl := l.Cases[cs]
		for r := 0; r <= maxRound; r++ {
			copy(cl.Rounds[r].SiteFeatures, a.features[ci][r])
		}
		for si := range a.stripes {
			cl.Invocations += a.stripes[si].invocations[ci]
			cl.PagesVisited += a.stripes[si].pages[ci]
		}
	}
	for site := range a.cfg.Domains {
		l.Measured[site] = a.recorded[site] && !a.failed[site]
	}
	return l
}

// Merge folds other into a: the mergeable-aggregate operation behind
// spill-only shard merging and distributed shards reporting home. Both
// aggregates must describe the same study (features, sites, cases, mode)
// and must have no open sites — end them first. Keep-log merges
// additionally require the two grids to cover disjoint cells (the
// pipeline's site partitioning guarantees it); overlapping cells are
// overwritten, not detected.
//
// Merges are serialized with each other and with snapshot publication, and
// every successful merge publishes a fresh Snapshot — so concurrent readers
// always observe the aggregate after a whole number of merges (a prefix of
// the committed leases), never a torn intermediate state.
func (a *Aggregate) Merge(other *Aggregate) error {
	a.pubMu.Lock()
	defer a.pubMu.Unlock()
	if other.cfg.NumFeatures != a.cfg.NumFeatures || other.cfg.NumSites != a.cfg.NumSites {
		return fmt.Errorf("stats: merging a %d-feature × %d-site aggregate into %d × %d",
			other.cfg.NumFeatures, other.cfg.NumSites, a.cfg.NumFeatures, a.cfg.NumSites)
	}
	if len(other.cfg.Cases) != len(a.cfg.Cases) {
		return fmt.Errorf("stats: merging aggregates with different case sets")
	}
	for ci, cs := range a.cfg.Cases {
		if other.cfg.Cases[ci] != cs {
			return fmt.Errorf("stats: merging aggregates with different case sets")
		}
	}
	if other.cfg.KeepLog != a.cfg.KeepLog {
		return fmt.Errorf("stats: merging a keep-log aggregate with a spill-only one")
	}
	if a.cfg.KeepLog && a.cfg.Rounds != other.cfg.Rounds {
		return fmt.Errorf("stats: merging keep-log aggregates with different round counts (%d vs %d)",
			other.cfg.Rounds, a.cfg.Rounds)
	}
	if n := a.OpenSites(); n > 0 {
		return fmt.Errorf("stats: aggregate has %d open sites; end them before merging", n)
	}
	if n := other.OpenSites(); n > 0 {
		return fmt.Errorf("stats: merged aggregate has %d open sites; end them before merging", n)
	}

	// Stripe partial sums: stripe counts may differ, so other's totals
	// land in a's stripe 0 — queries sum or max across stripes anyway.
	st0 := &a.stripes[0]
	st0.mu.Lock()
	for si := range other.stripes {
		ost := &other.stripes[si]
		for ci := range a.cfg.Cases {
			st0.invocations[ci] += ost.invocations[ci]
			st0.pages[ci] += ost.pages[ci]
			if ost.maxRound[ci] > st0.maxRound[ci] {
				st0.maxRound[ci] = ost.maxRound[ci]
			}
		}
	}
	st0.mu.Unlock()

	a.foldMu.Lock()
	other.foldMu.Lock()
	for ci := range a.cfg.Cases {
		for id, n := range other.featureSites[ci] {
			a.featureSites[ci][id] += n
		}
		for std, n := range other.stdSites[ci] {
			a.stdSites[ci][std] += n
		}
		for std, n := range other.blockedPairs[ci] {
			a.blockedPairs[ci][std] += n
		}
	}
	for n, count := range other.complexity {
		a.complexity[n] += count
	}
	for len(a.nspSums) < len(other.nspSums) {
		a.nspSums = append(a.nspSums, 0)
	}
	for r, s := range other.nspSums {
		a.nspSums[r] += s
	}
	a.nspMeasured += other.nspMeasured
	a.measured += other.measured
	other.foldMu.Unlock()
	a.foldMu.Unlock()

	if a.cfg.KeepLog {
		for ci := range a.cfg.Cases {
			for r := range a.features[ci] {
				dst, src := a.features[ci][r], other.features[ci][r]
				for site, sf := range src {
					if sf != nil {
						dst[site] = sf
					}
				}
			}
		}
		for site := range a.recorded {
			a.recorded[site] = a.recorded[site] || other.recorded[site]
			a.failed[site] = a.failed[site] || other.failed[site]
		}
	}
	a.publishLocked()
	return nil
}
