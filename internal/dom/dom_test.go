package dom

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

// buildTestTree constructs:
//
//	<html><head></head><body>
//	  <div id="main" class="wrap content">
//	    <a href="/one">one</a>
//	    <a href="/two" class="nav">two</a>
//	    <button id="go">Go</button>
//	    <input>
//	  </div>
//	  <div id="ads" class="ad-banner"><a href="/ad">ad</a></div>
//	</body></html>
func buildTestTree() *Node {
	doc := NewDocument()
	htmlEl := NewElement("html")
	doc.AppendChild(htmlEl)
	head := NewElement("head")
	body := NewElement("body")
	htmlEl.AppendChild(head)
	htmlEl.AppendChild(body)

	main := NewElement("div")
	main.SetAttr("id", "main")
	main.SetAttr("class", "wrap content")
	body.AppendChild(main)

	a1 := NewElement("a")
	a1.SetAttr("href", "/one")
	a1.AppendChild(NewText("one"))
	main.AppendChild(a1)

	a2 := NewElement("a")
	a2.SetAttr("href", "/two")
	a2.SetAttr("class", "nav")
	a2.AppendChild(NewText("two"))
	main.AppendChild(a2)

	btn := NewElement("button")
	btn.SetAttr("id", "go")
	btn.AppendChild(NewText("Go"))
	main.AppendChild(btn)

	main.AppendChild(NewElement("input"))

	ads := NewElement("div")
	ads.SetAttr("id", "ads")
	ads.SetAttr("class", "ad-banner")
	adLink := NewElement("a")
	adLink.SetAttr("href", "/ad")
	ads.AppendChild(adLink)
	body.AppendChild(ads)

	return doc
}

func TestTreeNavigation(t *testing.T) {
	doc := buildTestTree()
	main := doc.GetElementByID("main")
	if main == nil || main.Tag != "div" {
		t.Fatal("GetElementByID(main) failed")
	}
	if got := len(doc.ElementsByTag("a")); got != 3 {
		t.Fatalf("got %d anchors, want 3", got)
	}
	if main.Parent.Tag != "body" {
		t.Errorf("main parent = %s, want body", main.Parent.Tag)
	}
}

func TestSelectors(t *testing.T) {
	doc := buildTestTree()
	cases := []struct {
		sel  string
		want int
	}{
		{"a", 3},
		{"#main", 1},
		{".nav", 1},
		{"a.nav", 1},
		{"div", 2},
		{"div.ad-banner", 1},
		{"div.wrap.content", 1},
		{"span", 0},
		{"a#missing", 0},
		{"*", 10},
	}
	for _, c := range cases {
		if got := len(doc.QuerySelectorAll(c.sel)); got != c.want {
			t.Errorf("QuerySelectorAll(%q) = %d matches, want %d", c.sel, got, c.want)
		}
	}
	if el := doc.QuerySelector("button#go"); el == nil || el.ID() != "go" {
		t.Error("QuerySelector(button#go) failed")
	}
	if el := doc.QuerySelector("nope"); el != nil {
		t.Error("QuerySelector(nope) should be nil")
	}
}

func TestParseSelectorErrors(t *testing.T) {
	for _, bad := range []string{"", "div > a", "a[href]", "div .x"} {
		if _, err := ParseSelector(bad); err == nil {
			t.Errorf("ParseSelector(%q) should fail", bad)
		}
	}
}

func TestInsertRemove(t *testing.T) {
	doc := buildTestTree()
	main := doc.GetElementByID("main")
	ref := main.Children[1]
	el := NewElement("span")
	if err := main.InsertBefore(el, ref); err != nil {
		t.Fatal(err)
	}
	if main.Children[1] != el {
		t.Fatal("InsertBefore misplaced the node")
	}
	if el.Parent != main {
		t.Fatal("InsertBefore did not set parent")
	}
	main.RemoveChild(el)
	if el.Parent != nil || main.Children[1] != ref {
		t.Fatal("RemoveChild failed")
	}
	if err := main.InsertBefore(el, NewElement("q")); err == nil {
		t.Fatal("InsertBefore with foreign ref should fail")
	}
	// nil ref appends.
	if err := main.InsertBefore(el, nil); err != nil {
		t.Fatal(err)
	}
	if main.Children[len(main.Children)-1] != el {
		t.Fatal("InsertBefore(nil) did not append")
	}
}

func TestAppendChildReparents(t *testing.T) {
	doc := buildTestTree()
	main := doc.GetElementByID("main")
	ads := doc.GetElementByID("ads")
	link := ads.Children[0]
	main.AppendChild(link)
	if link.Parent != main {
		t.Fatal("AppendChild did not reparent")
	}
	if len(ads.Children) != 0 {
		t.Fatal("AppendChild did not detach from old parent")
	}
}

func TestCloneIndependence(t *testing.T) {
	doc := buildTestTree()
	cp := doc.Clone()
	if cp.CountElements() != doc.CountElements() {
		t.Fatal("clone element count differs")
	}
	cp.GetElementByID("main").SetAttr("id", "changed")
	if doc.GetElementByID("main") == nil {
		t.Fatal("mutating clone affected original")
	}
	if cp.Parent != nil {
		t.Fatal("clone should be detached")
	}
}

func TestHiddenAndVisibility(t *testing.T) {
	doc := buildTestTree()
	ads := doc.GetElementByID("ads")
	ads.Hidden = true
	adLink := ads.Children[0]
	if adLink.Visible() {
		t.Fatal("child of hidden element should be invisible")
	}
	links := doc.Links()
	for _, href := range links {
		if href == "/ad" {
			t.Fatal("Links returned hidden anchor")
		}
	}
	if len(links) != 2 {
		t.Fatalf("Links = %v, want 2 visible", links)
	}
	inter := doc.Interactive()
	for _, el := range inter {
		if el.ID() == "ads" || (el.Tag == "a" && el.AttrOr("href", "") == "/ad") {
			t.Fatal("Interactive returned hidden element")
		}
	}
	// 2 visible anchors + button + input = 4
	if len(inter) != 4 {
		t.Fatalf("Interactive = %d elements, want 4", len(inter))
	}
}

func TestInteractiveDataAction(t *testing.T) {
	doc := buildTestTree()
	div := NewElement("div")
	div.SetAttr("data-action", "expand")
	doc.Body().AppendChild(div)
	found := false
	for _, el := range doc.Interactive() {
		if el == div {
			found = true
		}
	}
	if !found {
		t.Fatal("data-action element not interactive")
	}
}

func TestTextContent(t *testing.T) {
	doc := buildTestTree()
	if got := doc.GetElementByID("main").TextContent(); got != "onetwoGo" {
		t.Errorf("TextContent = %q", got)
	}
}

func TestLinksDeduplicated(t *testing.T) {
	doc := buildTestTree()
	dup := NewElement("a")
	dup.SetAttr("href", "/one")
	doc.Body().AppendChild(dup)
	links := doc.Links()
	count := 0
	for _, l := range links {
		if l == "/one" {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("duplicate hrefs not deduplicated: %v", links)
	}
}

func TestScripts(t *testing.T) {
	doc := buildTestTree()
	ext := NewElement("script")
	ext.SetAttr("src", "/app.js")
	doc.Head().AppendChild(ext)
	inline := NewElement("script")
	inline.AppendChild(NewText("invoke Document.createElement 1;"))
	doc.Body().AppendChild(inline)

	scripts := doc.Scripts()
	if len(scripts) != 2 {
		t.Fatalf("got %d scripts, want 2", len(scripts))
	}
	if scripts[0].Src != "/app.js" || scripts[0].Inline != "" {
		t.Errorf("script 0 = %+v", scripts[0])
	}
	if scripts[1].Src != "" || !strings.Contains(scripts[1].Inline, "createElement") {
		t.Errorf("script 1 = %+v", scripts[1])
	}
}

func TestPath(t *testing.T) {
	doc := buildTestTree()
	btn := doc.GetElementByID("go")
	if got := btn.Path(); got != "html/body/div/button" {
		t.Errorf("Path = %q", got)
	}
}

func TestAttrOrder(t *testing.T) {
	el := NewElement("div")
	el.SetAttr("b", "1")
	el.SetAttr("a", "2")
	el.SetAttr("b", "3") // overwrite keeps position
	names := el.AttrNames()
	if len(names) != 2 || names[0] != "b" || names[1] != "a" {
		t.Errorf("AttrNames = %v", names)
	}
	if v, _ := el.Attr("B"); v != "3" {
		t.Errorf("attr lookup case-insensitive failed: %q", v)
	}
}

func TestWalkStops(t *testing.T) {
	doc := buildTestTree()
	visits := 0
	doc.Walk(func(n *Node) bool {
		visits++
		return visits < 3
	})
	if visits != 3 {
		t.Errorf("walk visited %d nodes after stop, want 3", visits)
	}
}

func TestSelectorMatchProperty(t *testing.T) {
	// Property: an element always matches the selector synthesized from
	// its own tag, id, and classes.
	tags := []string{"div", "a", "span", "section"}
	check := func(tagIdx uint8, id string, hasClass bool) bool {
		id = sanitizeIdent(id)
		el := NewElement(tags[int(tagIdx)%len(tags)])
		sel := el.Tag
		if id != "" {
			el.SetAttr("id", id)
			sel += "#" + id
		}
		if hasClass {
			el.SetAttr("class", "x")
			sel += ".x"
		}
		parsed, err := ParseSelector(sel)
		if err != nil {
			return false
		}
		return parsed.Matches(el)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func sanitizeIdent(s string) string {
	var b strings.Builder
	for _, r := range s {
		if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' {
			b.WriteRune(r)
		}
	}
	if b.Len() > 8 {
		return b.String()[:8]
	}
	return b.String()
}

func TestNodeString(t *testing.T) {
	doc := buildTestTree()
	if got := doc.String(); got != "#document" {
		t.Errorf("document String = %q", got)
	}
	main := doc.GetElementByID("main")
	s := main.String()
	if !strings.Contains(s, `<div`) || !strings.Contains(s, `id="main"`) {
		t.Errorf("element String = %q", s)
	}
}

// treeShape renders a subtree's full structure (types, tags, text, hidden
// flags, and attributes in first-set order) for deep-equality checks.
func treeShape(n *Node) string {
	var b strings.Builder
	var walk func(*Node, int)
	walk = func(c *Node, depth int) {
		b.WriteString(strings.Repeat(" ", depth))
		b.WriteString(c.String())
		if c.Hidden {
			b.WriteString("[hidden]")
		}
		for _, name := range c.AttrNames() {
			v, _ := c.Attr(name)
			b.WriteString(" " + name + "=" + v)
		}
		b.WriteString("\n")
		for _, k := range c.Children {
			walk(k, depth+1)
		}
	}
	walk(n, 0)
	return b.String()
}

func TestTemplateInstantiateEqualsClone(t *testing.T) {
	doc := buildTestTree()
	want := treeShape(doc)
	total := 0
	doc.Walk(func(*Node) bool { total++; return true })
	tpl := NewTemplate(doc)
	if tpl.NumNodes() != total {
		t.Errorf("NumNodes = %d, want %d", tpl.NumNodes(), total)
	}
	inst := tpl.Instantiate()
	if got := treeShape(inst); got != want {
		t.Errorf("instantiated tree differs:\n got:\n%s\nwant:\n%s", got, want)
	}
	// Parent links must be internally consistent.
	inst.Walk(func(c *Node) bool {
		for _, k := range c.Children {
			if k.Parent != c {
				t.Errorf("child %s has wrong parent", k)
			}
		}
		return true
	})
	if inst.Parent != nil {
		t.Error("instantiated root has a parent")
	}
}

func TestTemplateCloneIndependence(t *testing.T) {
	tpl := NewTemplate(buildTestTree())
	ref := treeShape(tpl.Root())

	a, b := tpl.Instantiate(), tpl.Instantiate()

	// Structural mutation of one clone.
	main := a.GetElementByID("main")
	main.AppendChild(NewElement("span"))
	main.RemoveChild(main.Children[0])

	// Visibility mutation of one clone.
	a.GetElementByID("ads").SetHidden(true)

	// Attribute mutation of one clone: both rewriting an existing
	// attribute and adding a new one trigger copy-on-write.
	btn := a.GetElementByID("go")
	btn.SetAttr("id", "stop")
	btn.SetAttr("data-x", "1")

	if got := treeShape(b); got != treeShape(tpl.Instantiate()) {
		t.Error("mutating clone A leaked into clone B")
	}
	if got := treeShape(tpl.Root()); got != ref {
		t.Errorf("mutating a clone leaked into the template:\n got:\n%s\nwant:\n%s", got, ref)
	}
	if b.GetElementByID("go") == nil || b.GetElementByID("stop") != nil {
		t.Error("clone B sees clone A's attribute write")
	}
	if !a.GetElementByID("main").HasClass("wrap") {
		t.Error("clone A lost shared attributes after unrelated writes")
	}
}

func TestTemplateConcurrentInstantiate(t *testing.T) {
	tpl := NewTemplate(buildTestTree())
	want := treeShape(tpl.Root())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				inst := tpl.Instantiate()
				// Mutate every clone: under -race this proves clones
				// share no mutable state with each other or the template.
				inst.GetElementByID("main").SetAttr("data-g", "x")
				inst.GetElementByID("ads").SetHidden(true)
				inst.GetElementByID("go").SetAttr("id", "stop")
				if inst.GetElementByID("stop") == nil {
					t.Errorf("goroutine %d: attribute write lost", g)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if got := treeShape(tpl.Root()); got != want {
		t.Error("concurrent clone mutation leaked into the template")
	}
}

func TestGenTracksMutations(t *testing.T) {
	doc := buildTestTree()
	g0 := doc.Gen()
	main := doc.GetElementByID("main")

	main.SetHidden(true)
	if doc.Gen() == g0 {
		t.Error("SetHidden did not bump Gen")
	}
	g1 := doc.Gen()
	main.SetHidden(true) // no-op write
	if doc.Gen() != g1 {
		t.Error("equal-value SetHidden bumped Gen")
	}
	main.AppendChild(NewElement("em"))
	if doc.Gen() == g1 {
		t.Error("AppendChild did not bump Gen")
	}
	g2 := doc.Gen()
	main.RemoveChild(main.Children[len(main.Children)-1])
	if doc.Gen() == g2 {
		t.Error("RemoveChild did not bump Gen")
	}
	// Gen is visible from any node of the tree.
	if main.Gen() != doc.Gen() {
		t.Error("Gen differs between root and descendant")
	}
}

func TestMatchAllMatchesQuerySelectorAll(t *testing.T) {
	doc := buildTestTree()
	for _, s := range []string{"a", "div.ad-banner", "#go", ".nav"} {
		sel, err := ParseSelector(s)
		if err != nil {
			t.Fatal(err)
		}
		got := doc.MatchAll(sel, nil)
		want := doc.QuerySelectorAll(s)
		if len(got) != len(want) {
			t.Fatalf("MatchAll(%q) = %d nodes, QuerySelectorAll = %d", s, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("MatchAll(%q)[%d] differs", s, i)
			}
		}
	}
}
