package dom

import "strings"

// Arena slabs grow geometrically from arenaMinSlab to arenaMaxSlab nodes:
// tiny documents waste at most a few nodes' worth of slab tail, while large
// ones still amortize to O(log n) allocations.
const (
	arenaMinSlab = 16
	arenaMaxSlab = 1024
)

// Arena bump-allocates nodes for one parsed document. The HTML parser
// creates every node of a page in one burst and the page (or its template)
// retains them all together, so batching them into slabs cuts the
// allocation count — and the GC's object-tracking load — by two orders of
// magnitude without changing any lifetime: the slabs live exactly as long
// as the document.
//
// An Arena must not outlive its document's construction (keeping one around
// would pin other documents' slabs), and the zero value is ready to use.
// Nodes from an Arena are ordinary *Node values in every other respect.
type Arena struct {
	slab []Node
	next int // size of the next slab
}

func (a *Arena) alloc() *Node {
	if len(a.slab) == 0 {
		if a.next < arenaMinSlab {
			a.next = arenaMinSlab
		}
		a.slab = make([]Node, a.next)
		if a.next < arenaMaxSlab {
			a.next *= 2
		}
	}
	n := &a.slab[0]
	a.slab = a.slab[1:]
	return n
}

// NewDocument returns an arena-allocated empty document root.
func (a *Arena) NewDocument() *Node {
	n := a.alloc()
	n.Type = DocumentNode
	return n
}

// NewElement returns an arena-allocated detached element.
func (a *Arena) NewElement(tag string) *Node {
	n := a.alloc()
	n.Type = ElementNode
	n.Tag = strings.ToLower(tag)
	return n
}

// NewText returns an arena-allocated detached text node.
func (a *Arena) NewText(text string) *Node {
	n := a.alloc()
	n.Type = TextNode
	n.Text = text
	return n
}

// NewComment returns an arena-allocated detached comment node.
func (a *Arena) NewComment(text string) *Node {
	n := a.alloc()
	n.Type = CommentNode
	n.Text = text
	return n
}
