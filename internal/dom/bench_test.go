package dom

import (
	"fmt"
	"testing"
)

// benchTree builds a page-shaped tree of roughly n elements: a grid of divs
// each carrying a couple of attributes, a link, and a text child — the
// density the synthetic web emits.
func benchTree(n int) *Node {
	doc := NewDocument()
	htmlEl := NewElement("html")
	doc.AppendChild(htmlEl)
	body := NewElement("body")
	htmlEl.AppendChild(body)
	for i := 0; len(body.Children) < n/3; i++ {
		div := NewElement("div")
		div.SetAttr("id", fmt.Sprintf("s-%d", i))
		div.SetAttr("class", "section wrap")
		a := NewElement("a")
		a.SetAttr("href", fmt.Sprintf("/page-%d", i))
		a.AppendChild(NewText("link"))
		div.AppendChild(a)
		body.AppendChild(div)
	}
	return doc
}

// BenchmarkClone is the per-node deep copy: one Node, one attribute map,
// and one child slice allocated per tree node.
func BenchmarkClone(b *testing.B) {
	doc := benchTree(120)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		doc.Clone()
	}
}

// BenchmarkTemplateInstantiate is the arena clone the browser's template
// cache uses: two slab allocations per clone regardless of page size, with
// attribute maps shared copy-on-write.
func BenchmarkTemplateInstantiate(b *testing.B) {
	tpl := NewTemplate(benchTree(120))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tpl.Instantiate()
	}
}
