// Package dom implements the document object model of the browser
// simulator: a mutable tree of elements, text, and comments with the query
// operations the crawler and the monkey-testing horde need (id/class/tag
// selectors, link and script extraction, interactive-element enumeration,
// and visibility tracking for element-hiding rules).
package dom
