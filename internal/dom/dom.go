package dom

import (
	"fmt"
	"sort"
	"strings"
)

// NodeType distinguishes tree node kinds.
type NodeType int

const (
	DocumentNode NodeType = iota
	ElementNode
	TextNode
	CommentNode
)

// Node is one tree node. The zero value is not useful; use the New*
// constructors.
type Node struct {
	Type     NodeType
	Tag      string // lower-case element tag, for ElementNode
	Text     string // for TextNode and CommentNode
	Parent   *Node
	Children []*Node

	// Hidden marks elements suppressed by element-hiding filter rules
	// (AdBlock Plus "##" rules); hidden elements are invisible to the
	// monkey-testing horde. Prefer SetHidden, which also invalidates
	// cached tree queries (see Gen); writing the field directly still
	// works but bypasses invalidation.
	Hidden bool

	// attrs holds the attributes in first-set order. Elements carry a
	// handful at most, so a linear slice beats a map on both lookup time
	// and allocation count (the parser creates hundreds of thousands of
	// attributed elements per crawl).
	attrs []attrPair

	// sharedAttrs marks attrs as borrowed from a Template (or another
	// clone); SetAttr copies the slice before the first write so
	// mutations never leak across clones.
	sharedAttrs bool

	// gen counts structural and visibility mutations of the tree. It is
	// maintained on the root node only; see Gen.
	gen uint64
}

// attrPair is one attribute; the Node keeps them in first-set order.
type attrPair struct{ name, value string }

// NewDocument returns an empty document root.
func NewDocument() *Node { return &Node{Type: DocumentNode} }

// NewElement returns a detached element with the given tag.
func NewElement(tag string) *Node {
	return &Node{Type: ElementNode, Tag: strings.ToLower(tag)}
}

// NewText returns a detached text node.
func NewText(text string) *Node { return &Node{Type: TextNode, Text: text} }

// NewComment returns a detached comment node.
func NewComment(text string) *Node { return &Node{Type: CommentNode, Text: text} }

// SetAttr sets an attribute, preserving first-set order for serialization.
func (n *Node) SetAttr(name, value string) {
	name = strings.ToLower(name)
	if n.sharedAttrs {
		// Copy-on-write: the attribute storage is shared with a template
		// (and its other clones), so the first write — update or append —
		// takes a private copy.
		n.attrs = append(make([]attrPair, 0, len(n.attrs)+1), n.attrs...)
		n.sharedAttrs = false
	}
	for i := range n.attrs {
		if n.attrs[i].name == name {
			n.attrs[i].value = value
			n.bumpGen()
			return
		}
	}
	n.attrs = append(n.attrs, attrPair{name, value})
	// Attributes feed cached views too (data-action drives Interactive),
	// so attribute writes move the generation. Cheap in the common case:
	// the parser sets attributes on still-detached elements (root = self).
	n.bumpGen()
}

// Attr returns the attribute value and whether it is present.
func (n *Node) Attr(name string) (string, bool) {
	if len(n.attrs) == 0 {
		return "", false
	}
	name = strings.ToLower(name)
	for i := range n.attrs {
		if n.attrs[i].name == name {
			return n.attrs[i].value, true
		}
	}
	return "", false
}

// AttrOr returns the attribute value or a default.
func (n *Node) AttrOr(name, def string) string {
	if v, ok := n.Attr(name); ok {
		return v
	}
	return def
}

// AttrNames returns the attribute names in first-set order.
func (n *Node) AttrNames() []string {
	out := make([]string, len(n.attrs))
	for i := range n.attrs {
		out[i] = n.attrs[i].name
	}
	return out
}

// ID returns the element's id attribute.
func (n *Node) ID() string { return n.AttrOr("id", "") }

// Classes returns the element's class list.
func (n *Node) Classes() []string {
	return strings.Fields(n.AttrOr("class", ""))
}

// HasClass reports whether the element carries the class.
func (n *Node) HasClass(c string) bool {
	for _, have := range n.Classes() {
		if have == c {
			return true
		}
	}
	return false
}

// Root returns the topmost ancestor of n (n itself when detached).
func (n *Node) Root() *Node {
	for n.Parent != nil {
		n = n.Parent
	}
	return n
}

// Gen returns the mutation generation of the node's tree: a counter bumped
// by every structural change (AppendChild, InsertBefore, RemoveChild) and
// every SetHidden on any node of the tree. Callers caching derived views of
// the tree (Interactive lists, query results) can compare generations
// instead of re-walking.
func (n *Node) Gen() uint64 { return n.Root().gen }

// bumpGen records a mutation of the tree containing n.
func (n *Node) bumpGen() { n.Root().gen++ }

// SetHidden sets the element-hiding flag and invalidates cached tree
// queries. Equal-value writes are no-ops.
func (n *Node) SetHidden(hidden bool) {
	if n.Hidden == hidden {
		return
	}
	n.Hidden = hidden
	n.bumpGen()
}

// AppendChild attaches child as the last child of n, detaching it from any
// previous parent.
func (n *Node) AppendChild(child *Node) {
	if child.Parent != nil {
		child.Parent.RemoveChild(child)
	}
	child.Parent = n
	if n.Children == nil {
		// Most parents hold several children; skip the 1→2→4 growth
		// reallocations the parser would otherwise pay per node.
		n.Children = make([]*Node, 0, 4)
	}
	n.Children = append(n.Children, child)
	n.bumpGen()
}

// InsertBefore inserts child immediately before ref, which must be a child
// of n; a nil ref appends.
func (n *Node) InsertBefore(child, ref *Node) error {
	if ref == nil {
		n.AppendChild(child)
		return nil
	}
	idx := -1
	for i, c := range n.Children {
		if c == ref {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("dom: InsertBefore reference is not a child of %s", n.Tag)
	}
	if child.Parent != nil {
		child.Parent.RemoveChild(child)
	}
	child.Parent = n
	n.Children = append(n.Children, nil)
	copy(n.Children[idx+1:], n.Children[idx:])
	n.Children[idx] = child
	n.bumpGen()
	return nil
}

// RemoveChild detaches child from n. Removing a non-child is a no-op.
func (n *Node) RemoveChild(child *Node) {
	for i, c := range n.Children {
		if c == child {
			n.Children = append(n.Children[:i], n.Children[i+1:]...)
			child.Parent = nil
			n.bumpGen()
			return
		}
	}
}

// Clone deep-copies the subtree rooted at n. The clone is detached. Every
// node, attribute map, and child slice is allocated individually; for
// repeated cloning of the same tree, NewTemplate/Instantiate amortizes that
// cost to a couple of slab allocations per clone.
func (n *Node) Clone() *Node {
	cp := &Node{Type: n.Type, Tag: n.Tag, Text: n.Text, Hidden: n.Hidden}
	if len(n.attrs) > 0 {
		cp.attrs = append([]attrPair(nil), n.attrs...)
	}
	for _, c := range n.Children {
		cc := c.Clone()
		cc.Parent = cp
		cp.Children = append(cp.Children, cc)
	}
	return cp
}

// Template is a frozen subtree prepared for cheap repeated cloning: the
// survey's browser loads the same page dozens of times (cases × rounds),
// and instantiating a template replaces a full re-parse — or a per-node
// deep Clone — with two slab allocations.
//
// The wrapped tree is owned by the Template and must not be mutated after
// NewTemplate; clones share its attribute storage copy-on-write, so
// Instantiate is safe to call from multiple goroutines concurrently and
// mutating one clone (structure, Hidden flags, attributes) never leaks
// into the template or any other clone.
type Template struct {
	root  *Node
	nodes int // node count of the subtree
	kids  int // total child-slice length across the subtree
}

// NewTemplate freezes the subtree rooted at n and returns its template.
// The caller must hand over ownership: the tree must not be mutated (or
// handed to anything that mutates it) afterwards.
func NewTemplate(n *Node) *Template {
	t := &Template{root: n}
	n.Walk(func(c *Node) bool {
		// Mark attribute storage shared now, once, so instantiation
		// never writes to template nodes (concurrent clones only read).
		c.sharedAttrs = len(c.attrs) > 0
		t.nodes++
		t.kids += len(c.Children)
		return true
	})
	return t
}

// Root returns the frozen tree for read-only inspection (queries, walks).
func (t *Template) Root() *Node { return t.root }

// NumNodes returns the node count of the frozen subtree.
func (t *Template) NumNodes() int { return t.nodes }

// Instantiate arena-clones the template: all nodes come from one []Node
// slab and all child slices are bump-allocated from one []*Node slab, so a
// clone costs two allocations regardless of page size. Attribute maps are
// shared with the template copy-on-write (SetAttr on a clone copies first).
func (t *Template) Instantiate() *Node {
	if t.nodes == 0 {
		return nil
	}
	slab := make([]Node, t.nodes)
	kidSlab := make([]*Node, t.kids)
	nodeIdx, kidIdx := 0, 0
	var build func(src, parent *Node) *Node
	build = func(src, parent *Node) *Node {
		cp := &slab[nodeIdx]
		nodeIdx++
		cp.Type = src.Type
		cp.Tag = src.Tag
		cp.Text = src.Text
		cp.Hidden = src.Hidden
		cp.Parent = parent
		if len(src.attrs) > 0 {
			cp.attrs = src.attrs
			cp.sharedAttrs = true
		}
		if len(src.Children) > 0 {
			cp.Children = kidSlab[kidIdx : kidIdx : kidIdx+len(src.Children)]
			kidIdx += len(src.Children)
			for _, c := range src.Children {
				cp.Children = append(cp.Children, build(c, cp))
			}
		}
		return cp
	}
	return build(t.root, nil)
}

// Walk visits the subtree rooted at n in document (pre-)order. Returning
// false from fn stops the walk.
func (n *Node) Walk(fn func(*Node) bool) bool {
	if !fn(n) {
		return false
	}
	for _, c := range n.Children {
		if !c.Walk(fn) {
			return false
		}
	}
	return true
}

// TextContent concatenates all descendant text.
func (n *Node) TextContent() string {
	var b strings.Builder
	n.Walk(func(c *Node) bool {
		if c.Type == TextNode {
			b.WriteString(c.Text)
		}
		return true
	})
	return b.String()
}

// Visible reports whether the element and all its ancestors are unhidden.
func (n *Node) Visible() bool {
	for c := n; c != nil; c = c.Parent {
		if c.Hidden {
			return false
		}
	}
	return true
}

// Path returns the element's tag path from the root, e.g.
// "html/body/div/a", used for diagnostics.
func (n *Node) Path() string {
	var parts []string
	for c := n; c != nil && c.Type == ElementNode; c = c.Parent {
		parts = append(parts, c.Tag)
	}
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	return strings.Join(parts, "/")
}

// --- selector support (subset: tag, #id, .class, and compounds) ---

// Selector is a parsed simple selector.
type Selector struct {
	Tag     string
	ID      string
	Classes []string
}

// ParseSelector parses a simple selector of the form
// "tag#id.class1.class2" where every component is optional.
func ParseSelector(s string) (Selector, error) {
	var sel Selector
	s = strings.TrimSpace(s)
	if s == "" {
		return sel, fmt.Errorf("dom: empty selector")
	}
	cur := &sel.Tag
	var buf strings.Builder
	flush := func() {
		switch cur {
		case &sel.Tag:
			sel.Tag = strings.ToLower(buf.String())
		case &sel.ID:
			sel.ID = buf.String()
		default:
			if buf.Len() > 0 {
				sel.Classes = append(sel.Classes, buf.String())
			}
		}
		buf.Reset()
	}
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '#':
			flush()
			cur = &sel.ID
		case '.':
			flush()
			cur = nil // subsequent runs are class names
		case ' ', '\t', '>', '[':
			return sel, fmt.Errorf("dom: unsupported selector syntax %q", s)
		default:
			buf.WriteByte(s[i])
		}
	}
	flush()
	return sel, nil
}

// Matches reports whether the element satisfies the selector.
func (sel Selector) Matches(n *Node) bool {
	if n.Type != ElementNode {
		return false
	}
	if sel.Tag != "" && sel.Tag != "*" && n.Tag != sel.Tag {
		return false
	}
	if sel.ID != "" && n.ID() != sel.ID {
		return false
	}
	for _, c := range sel.Classes {
		if !n.HasClass(c) {
			return false
		}
	}
	return true
}

// QuerySelector returns the first descendant element matching the selector
// string, or nil.
func (n *Node) QuerySelector(s string) *Node {
	sel, err := ParseSelector(s)
	if err != nil {
		return nil
	}
	var found *Node
	n.Walk(func(c *Node) bool {
		if c != n && sel.Matches(c) {
			found = c
			return false
		}
		return true
	})
	return found
}

// QuerySelectorAll returns all descendant elements matching the selector
// string, in document order.
func (n *Node) QuerySelectorAll(s string) []*Node {
	sel, err := ParseSelector(s)
	if err != nil {
		return nil
	}
	return n.MatchAll(sel, nil)
}

// MatchAll appends all descendant elements matching the compiled selector
// to dst, in document order, and returns it. Callers that query the same
// selector repeatedly (blocker hide rules, event dispatch) parse once and
// reuse both the selector and the destination slice.
func (n *Node) MatchAll(sel Selector, dst []*Node) []*Node {
	n.Walk(func(c *Node) bool {
		if c != n && sel.Matches(c) {
			dst = append(dst, c)
		}
		return true
	})
	return dst
}

// GetElementByID returns the first element with the given id, or nil.
func (n *Node) GetElementByID(id string) *Node {
	var found *Node
	n.Walk(func(c *Node) bool {
		if c.Type == ElementNode && c.ID() == id {
			found = c
			return false
		}
		return true
	})
	return found
}

// ElementsByTag returns all descendant elements with the tag, in document
// order.
func (n *Node) ElementsByTag(tag string) []*Node {
	tag = strings.ToLower(tag)
	var out []*Node
	n.Walk(func(c *Node) bool {
		if c.Type == ElementNode && c.Tag == tag {
			out = append(out, c)
		}
		return true
	})
	return out
}

// --- document-level conveniences used by the browser and crawler ---

// interactiveTags are the element kinds the monkey-testing horde interacts
// with.
var interactiveTags = map[string]bool{
	"a": true, "button": true, "input": true, "textarea": true,
	"select": true, "iframe": true,
}

// Interactive returns the visible interactive elements of the subtree in
// document order: links, buttons, form fields, iframes, and any element
// carrying a data-action attribute.
func (n *Node) Interactive() []*Node { return n.AppendInteractive(nil) }

// AppendInteractive appends the visible interactive elements to dst and
// returns it; callers enumerating repeatedly (the monkey-testing horde)
// pass a recycled slice. See Gen for cheap change detection.
func (n *Node) AppendInteractive(dst []*Node) []*Node {
	n.Walk(func(c *Node) bool {
		if c.Type != ElementNode || !c.Visible() {
			return c.Type != ElementNode || !c.Hidden // skip hidden subtrees entirely
		}
		if interactiveTags[c.Tag] {
			dst = append(dst, c)
			return true
		}
		if _, ok := c.Attr("data-action"); ok {
			dst = append(dst, c)
		}
		return true
	})
	return dst
}

// Links returns the href values of all visible anchors, deduplicated in
// document order.
func (n *Node) Links() []string {
	seen := map[string]bool{}
	var out []string
	for _, a := range n.ElementsByTag("a") {
		if !a.Visible() {
			continue
		}
		href, ok := a.Attr("href")
		if !ok || href == "" || seen[href] {
			continue
		}
		seen[href] = true
		out = append(out, href)
	}
	return out
}

// ScriptRef is one script reference found in a document.
type ScriptRef struct {
	// Src is the external script URL; empty for inline scripts.
	Src string
	// Inline is the inline script body when Src is empty.
	Inline string
	// Node is the defining element.
	Node *Node
}

// Scripts returns the document's scripts in document order. Scripts execute
// whether or not their element is hidden (hiding is cosmetic), matching
// real element-hiding semantics.
func (n *Node) Scripts() []ScriptRef {
	var out []ScriptRef
	for _, s := range n.ElementsByTag("script") {
		if src, ok := s.Attr("src"); ok && src != "" {
			out = append(out, ScriptRef{Src: src, Node: s})
			continue
		}
		out = append(out, ScriptRef{Inline: s.TextContent(), Node: s})
	}
	return out
}

// Head returns the document's head element, or nil.
func (n *Node) Head() *Node {
	heads := n.ElementsByTag("head")
	if len(heads) == 0 {
		return nil
	}
	return heads[0]
}

// Body returns the document's body element, or nil.
func (n *Node) Body() *Node {
	bodies := n.ElementsByTag("body")
	if len(bodies) == 0 {
		return nil
	}
	return bodies[0]
}

// CountElements returns the number of element nodes in the subtree.
func (n *Node) CountElements() int {
	count := 0
	n.Walk(func(c *Node) bool {
		if c.Type == ElementNode {
			count++
		}
		return true
	})
	return count
}

// String renders a compact description for diagnostics.
func (n *Node) String() string {
	switch n.Type {
	case DocumentNode:
		return "#document"
	case TextNode:
		t := n.Text
		if len(t) > 20 {
			t = t[:20] + "..."
		}
		return fmt.Sprintf("#text(%q)", t)
	case CommentNode:
		return "#comment"
	default:
		var b strings.Builder
		b.WriteString("<" + n.Tag)
		names := n.AttrNames()
		sort.Strings(names)
		for _, a := range names {
			fmt.Fprintf(&b, " %s=%q", a, n.AttrOr(a, ""))
		}
		b.WriteString(">")
		return b.String()
	}
}
