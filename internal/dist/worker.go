package dist

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"time"
)

// CrawlFunc runs the worker's local survey engine over a lease: it crawls
// exactly the given site indices and streams the resulting spill records —
// one complete, self-describing spill stream — into spill.
// core.Study.CrawlSites is the production implementation (a spill-only
// internal/pipeline shard).
type CrawlFunc func(ctx context.Context, sites []int, spill io.Writer) error

// WorkerConfig parameterizes one worker process.
type WorkerConfig struct {
	// Addr is the coordinator's host:port.
	Addr string
	// Build constructs the lease crawler from the coordinator's study
	// spec, received in the Welcome frame. It runs once per spec;
	// building the study (corpus + synthetic web generation) is the
	// worker's startup cost, and reconnections to a coordinator serving
	// the same spec reuse the built study instead of paying it again.
	Build func(spec []byte) (CrawlFunc, error)
	// HeartbeatInterval is how often the worker proves liveness. The
	// zero value derives it from the coordinator's announced heartbeat
	// timeout (a third of it), which is the right choice everywhere
	// outside tests: the pair can then never disagree, whatever
	// -heartbeat the coordinator was started with.
	HeartbeatInterval time.Duration
	// SpillDir, when non-empty, keeps a local copy of every lease's
	// spill stream (lease-NNN.spill) alongside the bytes streamed to the
	// coordinator — an on-disk backup of exactly what this worker
	// shipped, readable by report -spills like any other spill file. The
	// file appears under its final name only when the lease committed;
	// an abandoned lease leaves a .partial file.
	SpillDir string
	// MaxReconnectAttempts, when positive, makes the worker survive a
	// dead connection or unreachable coordinator: it redials with
	// exponential backoff plus jitter, giving up only after this many
	// consecutive attempts without reaching a coordinator. Progress (a
	// completed handshake) resets the budget. 0 preserves the historical
	// behavior — any connection failure ends Run.
	MaxReconnectAttempts int
	// ReconnectBaseDelay is the first backoff delay; it doubles per
	// consecutive failure, capped at 100× (≈ a couple of minutes at the
	// default). Default 500ms.
	ReconnectBaseDelay time.Duration
	// ReconnectSeed seeds the backoff jitter so tests replay identical
	// schedules; 0 derives a seed from the clock, which is what
	// production wants (fleet-wide identical jitter would stampede the
	// coordinator).
	ReconnectSeed int64
	// Dial, when non-nil, replaces net.Dial — the seam fault-injection
	// tests use to refuse or wrap connections. Production leaves it nil.
	Dial func(addr string) (net.Conn, error)
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// permanentError marks failures reconnecting cannot cure (protocol
// version mismatch, a Build that cannot construct the study): the
// session loop stops retrying and surfaces them immediately.
type permanentError struct{ err error }

func (e permanentError) Error() string { return e.err.Error() }
func (e permanentError) Unwrap() error { return e.err }

// errShutdown threads the coordinator's clean Shutdown frame out of a
// session.
var errShutdown = errors.New("dist: shutdown")

// Run connects to the coordinator and works leases until the coordinator
// sends Shutdown (survey complete — Run returns nil) or the context is
// canceled. With MaxReconnectAttempts set, a broken connection or failed
// dial is retried with exponential backoff + jitter — a restarted
// coordinator picks up from its checkpoint and its workers simply
// reconnect; without it, the first connection failure ends Run. A worker
// is stateless between leases: killing one mid-crawl loses nothing but
// that lease's work, which the coordinator re-issues.
func Run(ctx context.Context, cfg WorkerConfig) error {
	if cfg.Build == nil {
		return fmt.Errorf("dist: worker requires a Build function")
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	base := cfg.ReconnectBaseDelay
	if base <= 0 {
		base = 500 * time.Millisecond
	}
	seed := cfg.ReconnectSeed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	rng := rand.New(rand.NewSource(seed))

	// The built study is cached across reconnections keyed by the exact
	// spec bytes: a restarted coordinator serves the same spec, so the
	// worker skips the expensive rebuild.
	var crawl CrawlFunc
	var crawlSpec []byte

	attempts := 0
	for {
		err := runSession(ctx, cfg, logf, &crawl, &crawlSpec)
		switch {
		case errors.Is(err, errShutdown):
			logf("dist: survey complete, shutting down")
			return nil
		case err == nil:
			// Sessions end with shutdown, cancellation, or an error;
			// nil cannot happen, but treat it as a clean exit.
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		var perm permanentError
		if errors.As(err, &perm) {
			return perm.err
		}
		if cfg.MaxReconnectAttempts <= 0 {
			return err
		}
		if errors.As(err, new(welcomedError)) {
			attempts = 0 // the coordinator was reachable: fresh budget
			err = errors.Unwrap(err)
		}
		attempts++
		if attempts > cfg.MaxReconnectAttempts {
			return fmt.Errorf("dist: giving up after %d reconnect attempts: %w", attempts-1, err)
		}
		delay := base << (attempts - 1)
		if max := 100 * base; delay > max || delay <= 0 {
			delay = 100 * base
		}
		// Full jitter: a uniform draw over (0, delay] keeps a fleet of
		// workers orphaned by the same coordinator crash from redialing
		// in lockstep.
		delay = time.Duration(1 + rng.Int63n(int64(delay)))
		logf("dist: connection lost (%v); reconnecting in %v (attempt %d/%d)",
			err, delay, attempts, cfg.MaxReconnectAttempts)
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// welcomedError wraps a session failure that happened after a completed
// handshake: the coordinator was alive, so the reconnect budget resets.
type welcomedError struct{ err error }

func (e welcomedError) Error() string { return e.err.Error() }
func (e welcomedError) Unwrap() error { return e.err }

// runSession runs one connection's lifecycle: dial, handshake, build
// (or reuse) the study, then the lease loop. It returns errShutdown on
// the coordinator's clean Shutdown frame, a permanentError for failures
// retrying cannot cure, and a welcomedError wrapper for failures after
// a successful handshake.
func runSession(ctx context.Context, cfg WorkerConfig, logf func(string, ...any), crawl *CrawlFunc, crawlSpec *[]byte) error {
	dial := cfg.Dial
	if dial == nil {
		dial = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	raw, err := dial(cfg.Addr)
	if err != nil {
		return fmt.Errorf("dist: %w", err)
	}
	defer raw.Close()
	// Cancellation unblocks every pending read and write by closing the
	// connection out from under them.
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			raw.Close()
		case <-watchDone:
		}
	}()
	cn := newConn(raw)

	if err := cn.writeFrame(frameHello, encodeHello()); err != nil {
		return fmt.Errorf("dist: hello: %w", err)
	}
	f, err := cn.readFrame()
	if err != nil {
		return ctxOr(ctx, fmt.Errorf("dist: awaiting welcome: %w", err))
	}
	if f.Type != frameWelcome {
		return permanentError{fmt.Errorf("dist: expected welcome, got frame type %#x", f.Type)}
	}
	spec, hbTimeout, err := decodeWelcome(f.Payload)
	if err != nil {
		return permanentError{err}
	}
	interval := cfg.HeartbeatInterval
	if interval <= 0 {
		interval = hbTimeout / 3
		if interval <= 0 {
			interval = 3 * time.Second
		}
	}

	// Heartbeats run for the whole session, starting now: building the
	// study below can take longer than the coordinator's timeout at
	// survey scale (corpus + synthetic web generation), and the
	// coordinator has already granted this worker its first lease.
	stopHB := make(chan struct{})
	defer close(stopHB)
	go heartbeat(cn, interval, stopHB)

	if *crawl == nil || !bytes.Equal(*crawlSpec, spec) {
		built, err := cfg.Build(spec)
		if err != nil {
			return permanentError{fmt.Errorf("dist: building study from spec: %w", err)}
		}
		*crawl = built
		*crawlSpec = append([]byte(nil), spec...)
		logf("dist: joined %s, study built", cfg.Addr)
	} else {
		logf("dist: rejoined %s, study reused", cfg.Addr)
	}

	for {
		f, err := cn.readFrame()
		if err != nil {
			return ctxOr(ctx, welcomedError{fmt.Errorf("dist: awaiting lease: %w", err)})
		}
		switch f.Type {
		case frameShutdown:
			return errShutdown
		case frameLease:
			id, sites, err := decodeLease(f.Payload)
			if err != nil {
				return welcomedError{err}
			}
			logf("dist: crawling lease %d (%d sites)", id, len(sites))
			if err := runLease(ctx, cn, *crawl, id, sites, cfg.SpillDir); err != nil {
				return ctxOr(ctx, welcomedError{err})
			}
		default:
			return welcomedError{fmt.Errorf("dist: unexpected frame type %#x while idle", f.Type)}
		}
	}
}

// heartbeat proves liveness every interval until stop closes. A failed
// send is retried twice at interval/4 spacing before the goroutine
// gives up — a transient send hiccup (a coordinator stalled for one
// interval, a full socket buffer) shouldn't cost the session when the
// next attempt would have landed well inside the coordinator's timeout
// (workers send at a third of it).
func heartbeat(cn *conn, interval time.Duration, stop <-chan struct{}) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			sent := cn.writeFrame(frameHeartbeat, nil) == nil
			for retry := 0; !sent && retry < 2; retry++ {
				select {
				case <-time.After(interval / 4):
					sent = cn.writeFrame(frameHeartbeat, nil) == nil
				case <-stop:
					return
				}
			}
			if !sent {
				return // the main loop will see the broken conn
			}
		case <-stop:
			return
		}
	}
}

// runLease crawls one lease and commits it. The commit frame is sent only
// after the crawl finished and every spill chunk went out, so the
// coordinator's view of a lease is all-or-nothing. With a SpillDir, the
// stream is teed into lease-NNN.spill as it is sent; the file keeps a
// .partial suffix until the lease commits, so an on-disk lease copy under
// its final name is always a complete stream.
func runLease(ctx context.Context, cn *conn, crawl CrawlFunc, id int, sites []int, spillDir string) error {
	var spill io.Writer = spillChunkWriter{cn}
	var tee *os.File
	final := ""
	if spillDir != "" {
		if err := os.MkdirAll(spillDir, 0o755); err != nil {
			return fmt.Errorf("dist: lease %d spill dir: %w", id, err)
		}
		final = filepath.Join(spillDir, fmt.Sprintf("lease-%03d.spill", id))
		f, err := os.Create(final + ".partial")
		if err != nil {
			return fmt.Errorf("dist: lease %d spill file: %w", id, err)
		}
		tee = f
		defer tee.Close()
		spill = io.MultiWriter(spill, f)
	}
	if err := crawl(ctx, sites, spill); err != nil {
		return fmt.Errorf("dist: lease %d crawl: %w", id, err)
	}
	if err := cn.writeFrame(frameLeaseDone, encodeLeaseDone(id)); err != nil {
		return fmt.Errorf("dist: committing lease %d: %w", id, err)
	}
	if tee != nil {
		if err := tee.Sync(); err != nil {
			return fmt.Errorf("dist: lease %d spill file: %w", id, err)
		}
		if err := tee.Close(); err != nil {
			return fmt.Errorf("dist: lease %d spill file: %w", id, err)
		}
		if err := os.Rename(final+".partial", final); err != nil {
			return fmt.Errorf("dist: lease %d spill file: %w", id, err)
		}
		if err := fsyncDir(spillDir); err != nil {
			return fmt.Errorf("dist: lease %d spill dir: %w", id, err)
		}
	}
	return nil
}

// ctxOr prefers the context's error when the context ended: a connection
// closed by the cancellation watcher should read as "canceled", not as an
// I/O failure.
func ctxOr(ctx context.Context, err error) error {
	if ctx.Err() != nil {
		return ctx.Err()
	}
	return err
}
