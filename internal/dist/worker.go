package dist

import (
	"context"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"time"
)

// CrawlFunc runs the worker's local survey engine over a lease: it crawls
// exactly the given site indices and streams the resulting spill records —
// one complete, self-describing spill stream — into spill.
// core.Study.CrawlSites is the production implementation (a spill-only
// internal/pipeline shard).
type CrawlFunc func(ctx context.Context, sites []int, spill io.Writer) error

// WorkerConfig parameterizes one worker process.
type WorkerConfig struct {
	// Addr is the coordinator's host:port.
	Addr string
	// Build constructs the lease crawler from the coordinator's study
	// spec, received in the Welcome frame. It runs once per connection;
	// building the study (corpus + synthetic web generation) is the
	// worker's startup cost.
	Build func(spec []byte) (CrawlFunc, error)
	// HeartbeatInterval is how often the worker proves liveness. The
	// zero value derives it from the coordinator's announced heartbeat
	// timeout (a third of it), which is the right choice everywhere
	// outside tests: the pair can then never disagree, whatever
	// -heartbeat the coordinator was started with.
	HeartbeatInterval time.Duration
	// SpillDir, when non-empty, keeps a local copy of every lease's
	// spill stream (lease-NNN.spill) alongside the bytes streamed to the
	// coordinator — an on-disk backup of exactly what this worker
	// shipped, readable by report -spills like any other spill file.
	SpillDir string
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// Run connects to the coordinator and works leases until the coordinator
// sends Shutdown (survey complete — Run returns nil), the context is
// canceled, or the connection breaks. A worker is stateless between leases:
// killing one mid-crawl loses nothing but that lease's work, which the
// coordinator re-issues elsewhere.
func Run(ctx context.Context, cfg WorkerConfig) error {
	if cfg.Build == nil {
		return fmt.Errorf("dist: worker requires a Build function")
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	raw, err := net.Dial("tcp", cfg.Addr)
	if err != nil {
		return fmt.Errorf("dist: %w", err)
	}
	defer raw.Close()
	// Cancellation unblocks every pending read and write by closing the
	// connection out from under them.
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			raw.Close()
		case <-watchDone:
		}
	}()
	cn := newConn(raw)

	if err := cn.writeFrame(frameHello, encodeHello()); err != nil {
		return fmt.Errorf("dist: hello: %w", err)
	}
	f, err := cn.readFrame()
	if err != nil {
		return ctxOr(ctx, fmt.Errorf("dist: awaiting welcome: %w", err))
	}
	if f.Type != frameWelcome {
		return fmt.Errorf("dist: expected welcome, got frame type %#x", f.Type)
	}
	spec, hbTimeout, err := decodeWelcome(f.Payload)
	if err != nil {
		return err
	}
	interval := cfg.HeartbeatInterval
	if interval <= 0 {
		interval = hbTimeout / 3
		if interval <= 0 {
			interval = 3 * time.Second
		}
	}

	// Heartbeats run for the whole session, starting now: building the
	// study below can take longer than the coordinator's timeout at
	// survey scale (corpus + synthetic web generation), and the
	// coordinator has already granted this worker its first lease.
	stopHB := make(chan struct{})
	defer close(stopHB)
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				if cn.writeFrame(frameHeartbeat, nil) != nil {
					return // the main loop will see the broken conn
				}
			case <-stopHB:
				return
			}
		}
	}()

	crawl, err := cfg.Build(spec)
	if err != nil {
		return fmt.Errorf("dist: building study from spec: %w", err)
	}
	logf("dist: joined %s, study built", cfg.Addr)

	for {
		f, err := cn.readFrame()
		if err != nil {
			return ctxOr(ctx, fmt.Errorf("dist: awaiting lease: %w", err))
		}
		switch f.Type {
		case frameShutdown:
			logf("dist: survey complete, shutting down")
			return nil
		case frameLease:
			id, sites, err := decodeLease(f.Payload)
			if err != nil {
				return err
			}
			logf("dist: crawling lease %d (%d sites)", id, len(sites))
			if err := runLease(ctx, cn, crawl, id, sites, cfg.SpillDir); err != nil {
				return ctxOr(ctx, err)
			}
		default:
			return fmt.Errorf("dist: unexpected frame type %#x while idle", f.Type)
		}
	}
}

// runLease crawls one lease and commits it. The commit frame is sent only
// after the crawl finished and every spill chunk went out, so the
// coordinator's view of a lease is all-or-nothing. With a SpillDir, the
// stream is teed into lease-NNN.spill as it is sent.
func runLease(ctx context.Context, cn *conn, crawl CrawlFunc, id int, sites []int, spillDir string) error {
	var spill io.Writer = spillChunkWriter{cn}
	if spillDir != "" {
		if err := os.MkdirAll(spillDir, 0o755); err != nil {
			return fmt.Errorf("dist: lease %d spill dir: %w", id, err)
		}
		f, err := os.Create(filepath.Join(spillDir, fmt.Sprintf("lease-%03d.spill", id)))
		if err != nil {
			return fmt.Errorf("dist: lease %d spill file: %w", id, err)
		}
		defer f.Close()
		spill = io.MultiWriter(spill, f)
	}
	if err := crawl(ctx, sites, spill); err != nil {
		return fmt.Errorf("dist: lease %d crawl: %w", id, err)
	}
	if err := cn.writeFrame(frameLeaseDone, encodeLeaseDone(id)); err != nil {
		return fmt.Errorf("dist: committing lease %d: %w", id, err)
	}
	return nil
}

// ctxOr prefers the context's error when the context ended: a connection
// closed by the cancellation watcher should read as "canceled", not as an
// I/O failure.
func ctxOr(ctx context.Context, err error) error {
	if ctx.Err() != nil {
		return ctx.Err()
	}
	return err
}
