// Package dist runs the survey across machines: a coordinator/worker
// protocol over TCP that partitions the site list into leases, farms the
// leases out to workers running local spill-only pipeline shards, and
// merges their streamed results into one statistics aggregate — identical,
// statistic for statistic and therefore report byte for report byte, to a
// single-machine run of the same study.
//
// # Why this is nearly free
//
// The layers below were built for exactly this moment. A remote worker is a
// spill-only internal/pipeline shard (it folds visits into a mergeable
// stats.Aggregate and never holds a log); the internal/logstore spill
// stream is already a complete, self-describing, corruption-detecting
// serialization of a shard's output; stats.FromSpillStream replays a
// stream into an aggregate and stats.Aggregate.Merge folds aggregates
// together. dist adds only the transport (length-prefixed frames carrying
// spill chunks) and the lease lifecycle (who crawls what, and what happens
// when they die).
//
// # Protocol
//
// All messages are logstore frames: one type byte, a uvarint payload
// length, the payload. A session:
//
//	worker                                coordinator
//	  │ ── Hello{version} ──────────────────► │
//	  │ ◄── Welcome{version,hbTimeout,spec} ── │  spec: core study JSON
//	  │     (worker builds the identical      │  heartbeats start NOW, at
//	  │      corpus + synthetic web locally)  │  a third of hbTimeout, so
//	  │                                       │  a slow study build never
//	  │                                       │  reads as a dead worker
//	  │ ◄───────────────── Lease{id, sites[]} │
//	  │ ── SpillData{chunk} ─────────────────► │  buffered per lease
//	  │ ── Heartbeat ────────────────────────► │  every interval, mid-crawl
//	  │ ── SpillData{chunk} ─────────────────► │
//	  │ ── LeaseDone{id} ────────────────────► │  lease commits atomically:
//	  │                                       │  FromSpillStream → Merge
//	  │ ◄───────────────── Lease{id', sites[]} │  …until no leases remain
//	  │ ◄──────────────────────────── Shutdown │
//
// # Correctness under failure
//
// A lease merges atomically or not at all. The coordinator buffers a
// lease's spill chunks and folds them only on LeaseDone; any failure first
// — heartbeat silence past the timeout, a broken connection, a corrupt
// stream — discards the buffer whole and re-issues the lease to another
// worker. Because every visit's randomness is a pure function of
// (seed, site, case, round), the re-crawl reproduces the lost visits
// exactly, so a survey that survives worker deaths is byte-identical to one
// that didn't have any (TestWorkerKilledMidRun proves it end to end).
// Duplicate commits of one lease — a slow-but-alive worker finishing after
// its lease was re-issued — are dropped, because Aggregate.Merge is a pure
// tally addition that would double-count overlapping sites
// (stats.TestMergeOverlappingSites pins that shape). A lease that fails
// MaxLeaseAttempts times fails the survey instead of requeueing forever.
//
// # Backpressure and liveness
//
// The coordinator reads a granted lease's connection continuously, so TCP
// flow control is the spill backpressure. Workers heartbeat during long
// crawls; the coordinator arms a read deadline of HeartbeatTimeout per
// frame, making "silent for the timeout" the single definition of a dead
// worker. The send interval is negotiated, not configured twice: the
// Welcome frame announces the coordinator's timeout and workers beat at a
// third of it, for the whole session — including while building the study,
// which at survey scale can take longer than the timeout itself.
//
// cmd/pipeline surfaces the protocol as -coordinator and -worker;
// docs/OPERATIONS.md is the operator's runbook.
package dist
