package dist

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/logstore"
	"repro/internal/measure"
	"repro/internal/standards"
	"repro/internal/stats"
)

// CoordinatorConfig parameterizes a survey coordinator. Spec, NumSites,
// NumFeatures, Standards, and Cases describe the study; everything else has
// a usable default.
type CoordinatorConfig struct {
	// Spec is the opaque study specification forwarded to every worker in
	// the Welcome frame (core.Study.Spec produces it). Workers rebuild
	// the identical synthetic web and methodology from it, which is what
	// makes their visits deterministic and the merged result
	// byte-identical to a single-machine run.
	Spec []byte
	// NumSites is the survey's full site-list size; leases partition
	// [0, NumSites).
	NumSites int
	// NumFeatures is the corpus size; worker spill streams must declare
	// exactly this many features.
	NumFeatures int
	// Standards is the per-feature standard mapping
	// (stats.StandardsOf).
	Standards []standards.Abbrev
	// Cases are the browser configurations of the survey, in canonical
	// order.
	Cases []measure.Case
	// LeaseSites is the number of sites per lease. Smaller leases spread
	// better over heterogeneous workers and lose less work on a crash;
	// larger ones amortize per-lease overhead (each lease's spill stream
	// repeats the site-list header). Default 64.
	LeaseSites int
	// HeartbeatTimeout is how long a worker may stay silent before its
	// connection is declared dead and its in-flight lease re-issued.
	// Workers heartbeat at a third of this. Default 10s.
	HeartbeatTimeout time.Duration
	// MaxLeaseAttempts caps how many times one lease may be issued before
	// the survey fails — the brake that turns a deterministically
	// crashing lease (bad worker build, corrupt stream) into an error
	// instead of an infinite requeue loop. Default 5.
	MaxLeaseAttempts int
	// Agg, when non-nil, is the merge target for committed leases instead
	// of a coordinator-private aggregate. The query server passes its
	// resident aggregate here so HTTP readers watch tables fill in
	// mid-survey: every lease commit merges — and therefore publishes a
	// fresh snapshot epoch — into the aggregate the server reads. It must
	// describe the same study (NumFeatures, NumSites, Cases) and start
	// with no open sites.
	Agg *stats.Aggregate
	// CheckpointPath, when non-empty, journals every committed lease —
	// ID plus its complete spill stream — to an append-only checkpoint
	// file, fsynced per commit. A coordinator restarted over the same
	// checkpoint re-merges the journaled leases and re-issues only the
	// rest, so a coordinator kill loses at most the leases in flight.
	// The checkpoint pins the survey (sites, corpus, lease size, spec);
	// reusing it with a different study is an error.
	CheckpointPath string
	// SeedSpills, when non-empty, names spill files from a crashed
	// single-machine run of the same study (typically its spill
	// directory's shard and .partial files). Every lease whose sites all
	// committed durably in them is merged — and journaled, when
	// checkpointing — before any worker connects, so a local run
	// promotes to a distributed one without redoing finished work.
	// Leases only partially covered are re-crawled whole. Requires
	// Domains.
	SeedSpills []string
	// Domains is the survey's site list, index-aligned with the site
	// indices leases carry. Required when SeedSpills is set (seed
	// streams must prove they describe this exact study).
	Domains []string
	// OnLeaseMerged, when non-nil, is called after each lease commit
	// merges, with the number of merged leases so far and the total lease
	// count. Called under the coordinator's lock; keep it quick.
	OnLeaseMerged func(merged, total int)
	// Logf, when non-nil, receives progress lines (worker arrivals, lease
	// grants, requeues).
	Logf func(format string, args ...any)
}

func (cfg CoordinatorConfig) normalized() CoordinatorConfig {
	if cfg.LeaseSites <= 0 {
		cfg.LeaseSites = 64
	}
	if cfg.HeartbeatTimeout <= 0 {
		cfg.HeartbeatTimeout = 10 * time.Second
	}
	if cfg.MaxLeaseAttempts <= 0 {
		cfg.MaxLeaseAttempts = 5
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return cfg
}

// Coordinator owns one distributed survey: it partitions the site list into
// leases, hands leases to connecting workers, folds each completed lease's
// spill stream into the survey aggregate, and re-issues the leases of
// workers that die. Create one with Listen, run it with Serve.
type Coordinator struct {
	cfg CoordinatorConfig
	ln  net.Listener

	leases  [][]int  // lease ID → site indices
	pending chan int // lease IDs awaiting a worker

	mu        sync.Mutex
	agg       *stats.Aggregate
	ckpt      *checkpoint  // nil when not checkpointing
	completed map[int]bool // lease ID → merged
	attempts  []int        // lease ID → times issued
	conns     map[net.Conn]bool
	closed    bool

	allDone chan struct{} // closed when every lease has merged
	stop    chan struct{} // closed on any shutdown: wakes idle handlers
	fatal   chan error    // first unrecoverable error
	wg      sync.WaitGroup
}

// Listen binds the coordinator to addr (host:port; port 0 picks a free
// port — Addr reports the choice) and prepares the lease table. Serve
// starts the survey.
func Listen(addr string, cfg CoordinatorConfig) (*Coordinator, error) {
	cfg = cfg.normalized()
	if cfg.NumSites <= 0 {
		return nil, fmt.Errorf("dist: coordinator requires a positive site count")
	}
	agg := cfg.Agg
	if agg == nil {
		var err error
		agg, err = stats.New(stats.Config{
			NumFeatures: cfg.NumFeatures,
			NumSites:    cfg.NumSites,
			Standards:   cfg.Standards,
			Cases:       cfg.Cases,
			Stripes:     1,
		})
		if err != nil {
			return nil, fmt.Errorf("dist: %w", err)
		}
	} else {
		if agg.NumFeatures() != cfg.NumFeatures || agg.NumSites() != cfg.NumSites {
			return nil, fmt.Errorf("dist: external aggregate is %d features × %d sites, survey is %d × %d",
				agg.NumFeatures(), agg.NumSites(), cfg.NumFeatures, cfg.NumSites)
		}
		if n := agg.OpenSites(); n > 0 {
			return nil, fmt.Errorf("dist: external aggregate has %d open sites", n)
		}
	}
	c := &Coordinator{
		cfg:       cfg,
		agg:       agg,
		completed: make(map[int]bool),
		conns:     make(map[net.Conn]bool),
		allDone:   make(chan struct{}),
		stop:      make(chan struct{}),
		fatal:     make(chan error, 1),
	}
	for start := 0; start < cfg.NumSites; start += cfg.LeaseSites {
		end := start + cfg.LeaseSites
		if end > cfg.NumSites {
			end = cfg.NumSites
		}
		sites := make([]int, 0, end-start)
		for s := start; s < end; s++ {
			sites = append(sites, s)
		}
		c.leases = append(c.leases, sites)
	}
	c.attempts = make([]int, len(c.leases))

	// A previous life's checkpoint replays first: its journaled leases
	// merge exactly as they did before the crash. Then, optionally, a
	// crashed single-machine run's spills seed every lease they fully
	// cover. Both happen before the listener opens, so the first worker
	// already sees only the remaining work.
	if cfg.CheckpointPath != "" {
		ck, commits, err := loadCheckpoint(cfg.CheckpointPath, cfg)
		if err != nil {
			return nil, err
		}
		c.ckpt = ck
		ids := make([]int, 0, len(commits))
		for id := range commits {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			if id >= len(c.leases) {
				ck.close()
				return nil, fmt.Errorf("dist: checkpoint commits lease %d, survey has %d leases", id, len(c.leases))
			}
			if err := c.adopt(id, commits[id], false); err != nil {
				ck.close()
				return nil, fmt.Errorf("dist: replaying checkpoint: %w", err)
			}
		}
		if len(commits) > 0 {
			cfg.Logf("dist: checkpoint replayed %d/%d committed leases", len(commits), len(c.leases))
		}
	}
	if len(cfg.SeedSpills) > 0 {
		if err := c.seedFromSpills(); err != nil {
			c.ckpt.close()
			return nil, err
		}
	}

	// Each lease ID lives either in the channel or in exactly one
	// handler, so the channel never overflows on requeue.
	c.pending = make(chan int, len(c.leases))
	for id := range c.leases {
		if !c.completed[id] {
			c.pending <- id
		}
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		c.ckpt.close()
		return nil, fmt.Errorf("dist: %w", err)
	}
	c.ln = ln
	return c, nil
}

// seedFromSpills promotes a crashed single-machine run: every lease
// whose sites all committed durably in the seed spill files merges (and
// journals) as if a worker had crawled it.
func (c *Coordinator) seedFromSpills() error {
	cfg := c.cfg
	if len(cfg.Domains) != cfg.NumSites {
		return fmt.Errorf("dist: seeding from spills needs the %d-site domain list, got %d", cfg.NumSites, len(cfg.Domains))
	}
	scan, err := logstore.ScanCommittedFiles(cfg.NumFeatures, cfg.Domains, cfg.SeedSpills...)
	if err != nil {
		return fmt.Errorf("dist: scanning seed spills: %w", err)
	}
	seeded := 0
	for id, sites := range c.leases {
		if c.completed[id] {
			continue
		}
		covered := true
		for _, site := range sites {
			if !scan.Has(site) {
				covered = false
				break
			}
		}
		if !covered {
			continue
		}
		var buf bytes.Buffer
		w, err := logstore.NewWriter(&buf, cfg.NumFeatures, cfg.Domains)
		if err != nil {
			return fmt.Errorf("dist: seeding lease %d: %w", id, err)
		}
		for _, site := range sites {
			if err := scan.AppendSite(w, site); err != nil {
				return fmt.Errorf("dist: seeding lease %d: %w", id, err)
			}
		}
		if err := w.Flush(); err != nil {
			return fmt.Errorf("dist: seeding lease %d: %w", id, err)
		}
		if err := c.adopt(id, buf.Bytes(), true); err != nil {
			return fmt.Errorf("dist: seeding lease %d: %w", id, err)
		}
		seeded++
	}
	if seeded > 0 {
		cfg.Logf("dist: seeded %d/%d leases from local spills", seeded, len(c.leases))
	}
	return nil
}

// Addr returns the coordinator's bound listen address.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// Leases reports how many leases the site list was partitioned into.
func (c *Coordinator) Leases() int { return len(c.leases) }

// Serve accepts workers and runs the survey to completion, returning the
// merged aggregate — statistic for statistic identical to a single-machine
// spill-only run of the same study. It returns when every lease has merged,
// when ctx is canceled, or when a lease exhausts MaxLeaseAttempts.
func (c *Coordinator) Serve(ctx context.Context) (*stats.Aggregate, error) {
	go c.accept()

	select {
	case <-c.allDone:
		// Graceful: handlers are all idle (every lease merged), so let
		// each send its worker the Shutdown frame before hanging up.
		c.shutdown(false)
		return c.agg, nil
	case err := <-c.fatal:
		c.shutdown(true)
		return nil, err
	case <-ctx.Done():
		c.shutdown(true)
		return nil, ctx.Err()
	}
}

// shutdown closes the listener, wakes every handler idling in its
// grant/collect select, optionally force-closes live connections
// (unblocking handlers mid-read), and waits for the handlers to drain. On
// the graceful path handlers close their own connections after sending
// Shutdown.
func (c *Coordinator) shutdown(force bool) {
	c.mu.Lock()
	c.closed = true
	c.ln.Close()
	close(c.stop)
	if force {
		for cn := range c.conns {
			cn.Close()
		}
	}
	c.mu.Unlock()
	c.wg.Wait()
	c.mu.Lock()
	c.ckpt.close()
	c.ckpt = nil
	c.mu.Unlock()
}

func (c *Coordinator) accept() {
	for {
		cn, err := c.ln.Accept()
		if err != nil {
			return // listener closed: Serve is exiting
		}
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			cn.Close()
			return
		}
		c.conns[cn] = true
		c.mu.Unlock()
		c.wg.Add(1)
		go c.handle(cn)
	}
}

// forget drops a finished connection from the close set.
func (c *Coordinator) forget(cn net.Conn) {
	c.mu.Lock()
	delete(c.conns, cn)
	c.mu.Unlock()
	cn.Close()
}

// handle runs one worker session: handshake, then a grant/collect loop
// until the survey completes or the worker dies.
func (c *Coordinator) handle(raw net.Conn) {
	defer c.wg.Done()
	defer c.forget(raw)
	cn := newConn(raw)

	raw.SetReadDeadline(time.Now().Add(c.cfg.HeartbeatTimeout))
	f, err := cn.readFrame()
	if err != nil || f.Type != frameHello || decodeHello(f.Payload) != nil {
		c.cfg.Logf("dist: rejecting %s: bad hello", raw.RemoteAddr())
		return
	}
	if err := cn.writeFrame(frameWelcome, encodeWelcome(c.cfg.Spec, c.cfg.HeartbeatTimeout)); err != nil {
		return
	}
	c.cfg.Logf("dist: worker %s joined", raw.RemoteAddr())

	for {
		select {
		case id := <-c.pending:
			if err := c.runLease(cn, id); err != nil {
				c.requeue(id, err)
				return
			}
		case <-c.allDone:
			cn.writeFrame(frameShutdown, nil)
			return
		case <-c.stop:
			// Wake-up from shutdown(). If the survey completed (stop
			// and allDone can race into this select together), the
			// worker still deserves its clean Shutdown; otherwise the
			// run was aborted and the connection just drops.
			select {
			case <-c.allDone:
				cn.writeFrame(frameShutdown, nil)
			default:
			}
			return
		}
	}
}

// runLease grants one lease to the worker and collects its result: spill
// chunks buffer until the worker commits the lease with LeaseDone, at which
// point the buffered stream — a complete, self-describing spill stream for
// exactly the lease's sites — folds into the survey aggregate. Any error
// (timeout, disconnect, corrupt stream) discards the buffer whole: a lease
// merges atomically or not at all, which is what keeps re-issued leases
// from double-counting.
func (c *Coordinator) runLease(cn *conn, id int) error {
	c.mu.Lock()
	c.attempts[id]++
	attempt := c.attempts[id]
	c.mu.Unlock()
	c.cfg.Logf("dist: lease %d (%d sites) → %s (attempt %d)",
		id, len(c.leases[id]), cn.c.RemoteAddr(), attempt)

	if err := cn.writeFrame(frameLease, encodeLease(id, c.leases[id])); err != nil {
		return err
	}
	var buf bytes.Buffer
	for {
		cn.c.SetReadDeadline(time.Now().Add(c.cfg.HeartbeatTimeout))
		f, err := cn.readFrame()
		if err != nil {
			return err
		}
		switch f.Type {
		case frameHeartbeat:
			// Liveness only; the deadline reset above is the point.
		case frameSpillData:
			buf.Write(f.Payload)
		case frameLeaseDone:
			done, err := decodeLeaseDone(f.Payload)
			if err != nil {
				return err
			}
			if done != id {
				return fmt.Errorf("dist: worker committed lease %d while holding %d", done, id)
			}
			return c.mergeLease(id, buf.Bytes())
		default:
			return fmt.Errorf("dist: unexpected frame type %#x during lease", f.Type)
		}
	}
}

// mergeLease folds a committed lease's spill stream into the survey
// aggregate: the stream replays through stats.FromSpillStream into a
// per-lease aggregate, which then merges — the same FromSpills +
// Aggregate.Merge path a spill-only single-machine run uses, so the merged
// totals cannot diverge from it. Already-completed leases are dropped
// (duplicate commits double-count; see TestMergeOverlappingSites), which
// makes a lease that was re-issued after a slow — not dead — worker
// finally commits harmless.
func (c *Coordinator) mergeLease(id int, stream []byte) error {
	return c.adopt(id, stream, true)
}

// adopt is the single commit path for a lease stream, whatever its
// source: a live worker (journal=true), a checkpoint replay
// (journal=false — the stream is already durable), or a seed spill
// promotion (journal=true). When checkpointing, the journal append —
// fsynced — happens under the lock before the merge and before the
// lease is marked complete, so a crash at any instant leaves the
// checkpoint describing either the pre-commit or post-commit world,
// never a merged-but-unjournaled lease that a restart would lose.
func (c *Coordinator) adopt(id int, stream []byte, journal bool) error {
	c.mu.Lock()
	already := c.completed[id]
	c.mu.Unlock()
	if already {
		c.cfg.Logf("dist: lease %d committed twice; dropping duplicate", id)
		return nil
	}

	s, err := logstore.OpenSpills(bytes.NewReader(stream))
	if err != nil {
		return fmt.Errorf("dist: lease %d stream: %w", id, err)
	}
	if got := len(s.Domains()); got != c.cfg.NumSites {
		return fmt.Errorf("dist: lease %d stream declares %d sites, survey has %d", id, got, c.cfg.NumSites)
	}
	leaseAgg, err := stats.FromSpillStream(c.cfg.Standards, c.cfg.Cases, s)
	if err != nil {
		return fmt.Errorf("dist: lease %d stream: %w", id, err)
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.completed[id] { // re-check under the lock: two commits can race
		c.cfg.Logf("dist: lease %d committed twice; dropping duplicate", id)
		return nil
	}
	if journal && c.ckpt != nil {
		if err := c.ckpt.commit(id, stream); err != nil {
			return err
		}
	}
	if err := c.agg.Merge(leaseAgg); err != nil {
		return fmt.Errorf("dist: merging lease %d: %w", id, err)
	}
	c.completed[id] = true
	c.cfg.Logf("dist: lease %d merged (%d/%d)", id, len(c.completed), len(c.leases))
	if c.cfg.OnLeaseMerged != nil {
		c.cfg.OnLeaseMerged(len(c.completed), len(c.leases))
	}
	if len(c.completed) == len(c.leases) {
		close(c.allDone)
	}
	return nil
}

// Completed reports how many leases have merged so far.
func (c *Coordinator) Completed() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.completed)
}

// requeue returns a failed lease to the pending queue — unless it has been
// issued MaxLeaseAttempts times already, in which case the survey fails.
func (c *Coordinator) requeue(id int, cause error) {
	c.mu.Lock()
	attempts := c.attempts[id]
	done := c.completed[id]
	c.mu.Unlock()
	if done {
		// The lease merged before the connection died; nothing to redo.
		return
	}
	if attempts >= c.cfg.MaxLeaseAttempts {
		err := fmt.Errorf("dist: lease %d failed %d times, giving up: %w", id, attempts, cause)
		select {
		case c.fatal <- err:
		default:
		}
		return
	}
	c.cfg.Logf("dist: lease %d requeued after %v", id, cause)
	c.pending <- id
}
