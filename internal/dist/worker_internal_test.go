package dist

// White-box test for the worker's heartbeat sender: a transient send
// failure — the shape a coordinator stalled for one heartbeat interval
// produces — must not end the heartbeat goroutine, because the retried
// send still lands well inside the coordinator's timeout (workers send at
// a third of it). Only a persistently dead connection may stop it.

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"
)

// stallConn is a net.Conn whose first failWrites writes fail — a stalled
// or briefly unreachable peer — and which counts the writes that land.
type stallConn struct {
	net.Conn // nil: only Write is exercised by the heartbeat path

	mu         sync.Mutex
	failWrites int
	landed     int
}

func (c *stallConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failWrites > 0 {
		c.failWrites--
		return 0, errors.New("stalled peer")
	}
	c.landed++
	return len(p), nil
}

func (c *stallConn) landedWrites() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.landed
}

func TestHeartbeatRidesOutTransientSendFailures(t *testing.T) {
	for _, tc := range []struct {
		name       string
		failWrites int
		survives   bool
	}{
		{"healthy", 0, true},
		{"one_failure", 1, true},
		{"two_failures", 2, true}, // the retry budget exactly
		{"dead_conn", 100, false}, // every retry fails: give up
	} {
		t.Run(tc.name, func(t *testing.T) {
			sc := &stallConn{failWrites: tc.failWrites}
			cn := newConn(sc)
			stop := make(chan struct{})
			done := make(chan struct{})
			go func() {
				heartbeat(cn, 10*time.Millisecond, stop)
				close(done)
			}()

			if tc.survives {
				// The heartbeat must absorb the failures and land a send.
				deadline := time.After(5 * time.Second)
				for sc.landedWrites() == 0 {
					select {
					case <-done:
						t.Fatal("heartbeat gave up on a transient failure")
					case <-deadline:
						t.Fatal("no heartbeat landed after the stall cleared")
					case <-time.After(time.Millisecond):
					}
				}
				close(stop)
				<-done
			} else {
				select {
				case <-done:
					// Gave up, as a dead connection deserves; the session
					// loop notices via its own read error.
				case <-time.After(5 * time.Second):
					t.Fatal("heartbeat kept retrying a dead connection")
				}
				close(stop)
				if sc.landedWrites() != 0 {
					t.Errorf("%d writes landed on a dead connection", sc.landedWrites())
				}
			}
		})
	}
}
