package dist

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/logstore"
)

// protocolVersion is bumped whenever the frame grammar changes; a
// coordinator and worker must agree exactly (the handshake enforces it).
const protocolVersion = 1

// maxFramePayload bounds a single frame. Spill data arrives in chunks the
// size of the writer's flush buffer (64 KiB), control payloads are tiny,
// and the Welcome spec is small JSON — 1 MiB leaves room for all of them
// while keeping a hostile peer from ballooning the reader.
const maxFramePayload = 1 << 20

// Frame types. Worker→coordinator and coordinator→worker types share one
// namespace so a misdirected frame is always detectable.
const (
	// frameHello (worker→coordinator) opens a connection: payload is the
	// worker's protocol version.
	frameHello = 0x01
	// frameWelcome (coordinator→worker) accepts it: payload is the
	// coordinator's protocol version followed by the length-prefixed
	// study spec the worker builds its local survey from.
	frameWelcome = 0x02
	// frameLease (coordinator→worker) assigns work: a lease ID and the
	// site indices the worker must crawl.
	frameLease = 0x03
	// frameShutdown (coordinator→worker) ends the session: the survey is
	// complete and the worker should exit cleanly.
	frameShutdown = 0x04
	// frameSpillData (worker→coordinator) carries a chunk of the lease's
	// spill stream, exactly as logstore.Writer produced it.
	frameSpillData = 0x05
	// frameLeaseDone (worker→coordinator) commits a lease: every site in
	// it has been crawled and every spill byte sent.
	frameLeaseDone = 0x06
	// frameHeartbeat (worker→coordinator) proves liveness mid-crawl; it
	// carries no payload.
	frameHeartbeat = 0x07
)

// conn wraps a network connection with the frame codec. Writes are
// serialized by a mutex so the heartbeat goroutine and the spill stream can
// interleave whole frames, never frame fragments.
type conn struct {
	c   net.Conn
	br  logstore.FrameReader
	wmu sync.Mutex
}

func newConn(c net.Conn) *conn {
	return &conn{c: c, br: bufio.NewReaderSize(c, 1<<16)}
}

func (c *conn) writeFrame(typ byte, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return logstore.WriteFrame(c.c, typ, payload)
}

func (c *conn) readFrame() (logstore.Frame, error) {
	return logstore.ReadFrame(c.br, maxFramePayload)
}

// spillChunkWriter adapts the frame connection to io.Writer so a
// logstore.Writer can stream a lease's spill bytes straight onto the wire:
// every flush of the spill writer's buffer becomes one SpillData frame.
type spillChunkWriter struct{ c *conn }

func (w spillChunkWriter) Write(p []byte) (int, error) {
	if err := w.c.writeFrame(frameSpillData, p); err != nil {
		return 0, err
	}
	return len(p), nil
}

// uvarints below are the same encoding the logstore binary codec uses; the
// payloads stay byte-compatible with what a binWriter would emit.

func putUvarint(buf []byte, vs ...uint64) []byte {
	var scratch [binary.MaxVarintLen64]byte
	for _, v := range vs {
		n := binary.PutUvarint(scratch[:], v)
		buf = append(buf, scratch[:n]...)
	}
	return buf
}

func readUvarint(r io.ByteReader, what string) (uint64, error) {
	v, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, fmt.Errorf("dist: decoding %s: %w", what, err)
	}
	return v, nil
}

// encodeHello builds a Hello payload.
func encodeHello() []byte { return putUvarint(nil, protocolVersion) }

// decodeHello validates a Hello payload.
func decodeHello(payload []byte) error {
	v, err := readUvarint(bytes.NewReader(payload), "hello version")
	if err != nil {
		return err
	}
	if v != protocolVersion {
		return fmt.Errorf("dist: worker speaks protocol %d, coordinator %d", v, protocolVersion)
	}
	return nil
}

// encodeWelcome builds a Welcome payload: protocol version, the
// coordinator's heartbeat timeout (milliseconds — workers derive their
// send interval from it, so the pair can never disagree), and the study
// spec.
func encodeWelcome(spec []byte, heartbeatTimeout time.Duration) []byte {
	buf := putUvarint(nil, protocolVersion, uint64(heartbeatTimeout.Milliseconds()), uint64(len(spec)))
	return append(buf, spec...)
}

// decodeWelcome returns the study spec and the coordinator's heartbeat
// timeout.
func decodeWelcome(payload []byte) ([]byte, time.Duration, error) {
	r := bytes.NewReader(payload)
	v, err := readUvarint(r, "welcome version")
	if err != nil {
		return nil, 0, err
	}
	if v != protocolVersion {
		return nil, 0, fmt.Errorf("dist: coordinator speaks protocol %d, worker %d", v, protocolVersion)
	}
	hbMillis, err := readUvarint(r, "heartbeat timeout")
	if err != nil {
		return nil, 0, err
	}
	n, err := readUvarint(r, "spec length")
	if err != nil {
		return nil, 0, err
	}
	if n > uint64(r.Len()) {
		return nil, 0, fmt.Errorf("dist: spec length %d exceeds payload", n)
	}
	spec := make([]byte, n)
	if _, err := io.ReadFull(r, spec); err != nil {
		return nil, 0, fmt.Errorf("dist: decoding spec: %w", err)
	}
	return spec, time.Duration(hbMillis) * time.Millisecond, nil
}

// encodeLease builds a Lease payload: ID, site count, site indices.
func encodeLease(id int, sites []int) []byte {
	buf := putUvarint(nil, uint64(id), uint64(len(sites)))
	for _, s := range sites {
		buf = putUvarint(buf, uint64(s))
	}
	return buf
}

// decodeLease returns the lease ID and its site indices.
func decodeLease(payload []byte) (int, []int, error) {
	r := bytes.NewReader(payload)
	id, err := readUvarint(r, "lease id")
	if err != nil {
		return 0, nil, err
	}
	n, err := readUvarint(r, "lease site count")
	if err != nil {
		return 0, nil, err
	}
	if n > uint64(r.Len()) { // each site index is ≥ 1 byte
		return 0, nil, fmt.Errorf("dist: lease claims %d sites in a %d-byte payload", n, r.Len())
	}
	sites := make([]int, n)
	for i := range sites {
		s, err := readUvarint(r, "lease site")
		if err != nil {
			return 0, nil, err
		}
		sites[i] = int(s)
	}
	return int(id), sites, nil
}

// encodeLeaseDone builds a LeaseDone payload.
func encodeLeaseDone(id int) []byte { return putUvarint(nil, uint64(id)) }

// decodeLeaseDone returns the completed lease's ID.
func decodeLeaseDone(payload []byte) (int, error) {
	id, err := readUvarint(bytes.NewReader(payload), "lease-done id")
	return int(id), err
}
