package dist

// White-box tests for the coordinator's commit bookkeeping: the loopback
// protocol tests live in dist_test.go; these drive mergeLease and requeue
// directly to pin the duplicate-commit and give-up edges that are hard to
// hit reliably through real connections.

import (
	"bytes"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/logstore"
	"repro/internal/measure"
	"repro/internal/standards"
)

const (
	wbSites    = 8
	wbFeatures = 16
	wbLease    = 4 // sites per lease → 2 leases
)

func wbStandards() []standards.Abbrev {
	catalog := standards.Catalog()
	out := make([]standards.Abbrev, wbFeatures)
	for i := range out {
		out[i] = catalog[i%len(catalog)].Abbrev
	}
	return out
}

func wbCoordinator(t *testing.T, onMerged func(merged, total int)) *Coordinator {
	t.Helper()
	c, err := Listen("127.0.0.1:0", CoordinatorConfig{
		Spec:          []byte("spec"),
		NumSites:      wbSites,
		NumFeatures:   wbFeatures,
		Standards:     wbStandards(),
		Cases:         []measure.Case{measure.CaseDefault, measure.CaseBlocking},
		LeaseSites:    wbLease,
		OnLeaseMerged: onMerged,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.ln.Close() })
	return c
}

// wbLeaseStream builds the spill bytes a worker would stream home for one
// lease: observations and end markers for the lease's sites, over the full
// site-list header.
func wbLeaseStream(t *testing.T, sites []int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := logstore.NewWriter(&buf, wbFeatures, make([]string, wbSites))
	if err != nil {
		t.Fatal(err)
	}
	for _, site := range sites {
		sf := measure.NewBitset(wbFeatures)
		sf.Set(site % wbFeatures)
		if err := w.Append(logstore.Observation{
			Case: measure.CaseDefault, Round: 0, Site: site,
			Features: sf, Invocations: 3, Pages: 1,
		}); err != nil {
			t.Fatal(err)
		}
		if err := w.EndSite(site); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestMergeLeaseDedupConcurrent commits the same lease from many
// goroutines at once — the re-issued-lease race, where a slow worker and
// its replacement both finish. Exactly one commit may merge: the tallies
// count each site once, and OnLeaseMerged fires once per lease.
func TestMergeLeaseDedupConcurrent(t *testing.T) {
	var merges atomic.Int32
	c := wbCoordinator(t, func(merged, total int) {
		merges.Add(1)
		if total != 2 {
			t.Errorf("OnLeaseMerged total = %d, want 2", total)
		}
	})

	stream := wbLeaseStream(t, c.leases[0])
	const committers = 8
	var wg sync.WaitGroup
	for i := 0; i < committers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := c.mergeLease(0, stream); err != nil {
				t.Errorf("mergeLease: %v", err)
			}
		}()
	}
	wg.Wait()

	if got := c.agg.MeasuredCount(); got != wbLease {
		t.Errorf("MeasuredCount after %d duplicate commits = %d, want %d (merged once)", committers, got, wbLease)
	}
	inv, _ := c.agg.Totals()
	if want := int64(wbLease * 3); inv != want {
		t.Errorf("invocations after duplicate commits = %d, want %d", inv, want)
	}
	if got := merges.Load(); got != 1 {
		t.Errorf("OnLeaseMerged fired %d times, want 1", got)
	}

	// The second lease completes the survey: allDone closes and the
	// external-visible aggregate holds every site exactly once.
	if err := c.mergeLease(1, wbLeaseStream(t, c.leases[1])); err != nil {
		t.Fatal(err)
	}
	select {
	case <-c.allDone:
	default:
		t.Error("allDone not closed after every lease merged")
	}
	if got := c.agg.MeasuredCount(); got != wbSites {
		t.Errorf("final MeasuredCount = %d, want %d", got, wbSites)
	}
	if got := merges.Load(); got != 2 {
		t.Errorf("OnLeaseMerged fired %d times, want 2", got)
	}
}

// TestMergeLeaseRejectsCorruptStream: a truncated or mismatched stream
// fails the commit without marking the lease complete, so it can be
// re-issued.
func TestMergeLeaseRejectsCorruptStream(t *testing.T) {
	c := wbCoordinator(t, nil)
	stream := wbLeaseStream(t, c.leases[0])
	if err := c.mergeLease(0, stream[:len(stream)-3]); err == nil {
		t.Error("mergeLease accepted a truncated stream")
	}
	var buf bytes.Buffer
	w, err := logstore.NewWriter(&buf, wbFeatures, make([]string, wbSites+1))
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	if err := c.mergeLease(0, buf.Bytes()); err == nil {
		t.Error("mergeLease accepted a stream with the wrong site count")
	}
	if c.completed[0] {
		t.Error("failed commits marked the lease complete")
	}
	if err := c.mergeLease(0, stream); err != nil {
		t.Errorf("valid commit after failed ones: %v", err)
	}
}

// TestRequeueGivesUpAfterMaxAttempts pins the requeue brake: below the
// attempt cap a dead worker's lease goes back to pending; at the cap the
// survey fails with a fatal error; and a lease that merged before its
// worker died is not re-issued at all.
func TestRequeueGivesUpAfterMaxAttempts(t *testing.T) {
	c := wbCoordinator(t, nil)
	cause := errors.New("connection lost")

	// Drain the initial pending queue so requeue effects are visible.
	for range c.leases {
		<-c.pending
	}

	c.attempts[0] = c.cfg.MaxLeaseAttempts - 1
	c.requeue(0, cause)
	select {
	case id := <-c.pending:
		if id != 0 {
			t.Fatalf("requeued lease %d, want 0", id)
		}
	default:
		t.Fatal("lease below the attempt cap was not requeued")
	}
	select {
	case err := <-c.fatal:
		t.Fatalf("requeue below the cap reported fatal: %v", err)
	default:
	}

	c.attempts[0] = c.cfg.MaxLeaseAttempts
	c.requeue(0, cause)
	select {
	case <-c.pending:
		t.Fatal("lease at the attempt cap was requeued")
	default:
	}
	select {
	case err := <-c.fatal:
		if !errors.Is(err, cause) {
			t.Errorf("fatal error %v does not wrap the cause", err)
		}
	default:
		t.Fatal("no fatal error after the attempt cap")
	}

	// A completed lease is never re-issued, whatever the attempt count.
	c.completed[1] = true
	c.attempts[1] = 1
	c.requeue(1, cause)
	select {
	case <-c.pending:
		t.Fatal("completed lease was requeued")
	default:
	}
}
