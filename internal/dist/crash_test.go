package dist_test

// Crash-and-restart equivalence for the distributed survey: a coordinator
// killed after any number of lease commits, restarted over its checkpoint
// with workers that reconnect on their own, must finish the survey with a
// report byte-identical to an uninterrupted single-machine run.

import (
	"bytes"
	"context"
	"errors"
	"net"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/faultinject"
	"repro/internal/stats"
)

// ckptCoordinator starts a loopback coordinator journaling to ckptPath,
// cancelling serveCtx after stopAfter lease merges (0 = never).
func ckptCoordinator(t *testing.T, study *core.Study, leaseSites int, ckptPath string, stopAfter int, stop func()) *dist.Coordinator {
	t.Helper()
	spec, err := study.Spec()
	if err != nil {
		t.Fatal(err)
	}
	c, err := dist.Listen("127.0.0.1:0", dist.CoordinatorConfig{
		Spec:             spec,
		NumSites:         len(study.Web.Sites),
		NumFeatures:      len(study.Registry.Features),
		Standards:        stats.StandardsOf(study.Registry),
		Cases:            study.Cfg.Cases,
		LeaseSites:       leaseSites,
		HeartbeatTimeout: 2 * time.Second,
		CheckpointPath:   ckptPath,
		Logf:             t.Logf,
		OnLeaseMerged: func(merged, total int) {
			if stopAfter > 0 && merged == stopAfter {
				stop()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// reconnectWorker runs a worker that survives coordinator deaths: every
// dial goes to whatever address addr currently holds, optionally wrapped
// by wrapConn, with tight reconnect backoff so tests stay fast.
func reconnectWorker(ctx context.Context, addr *atomic.Value, errs chan<- error, wrapConn func(net.Conn) net.Conn) {
	errs <- dist.Run(ctx, dist.WorkerConfig{
		Addr:                 "moving-target", // every dial re-reads addr
		HeartbeatInterval:    50 * time.Millisecond,
		MaxReconnectAttempts: 100,
		ReconnectBaseDelay:   5 * time.Millisecond,
		ReconnectSeed:        1,
		Dial: func(string) (net.Conn, error) {
			cn, err := net.Dial("tcp", addr.Load().(string))
			if err != nil {
				return nil, err
			}
			if wrapConn != nil {
				cn = wrapConn(cn)
			}
			return cn, nil
		},
		Build: func(spec []byte) (dist.CrawlFunc, error) {
			s, err := core.StudyFromSpec(spec, core.Config{Shards: 1, ShardWorkers: 2})
			if err != nil {
				return nil, err
			}
			return s.CrawlSites, nil
		},
	})
}

// TestCoordinatorCrashMatrix is the distributed half of the crash matrix:
// for every commit count k, a coordinator killed right after its k-th
// lease merge and restarted over the same checkpoint — its workers left
// running, reconnecting by themselves — produces the byte-identical
// aggregate report. The checkpoint must also have made the first life's
// work durable: the restarted coordinator starts with at least k leases
// already merged.
func TestCoordinatorCrashMatrix(t *testing.T) {
	want := singleMachineReport(t)
	const leaseSites = 3 // 18 sites → 6 leases

	study, err := core.NewStudy(testStudyConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer study.Close()
	numLeases := (len(study.Web.Sites) + leaseSites - 1) / leaseSites

	for k := 1; k < numLeases; k++ {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)

		ckpt := filepath.Join(t.TempDir(), "survey.ckpt")
		var addr atomic.Value
		serve1Ctx, kill1 := context.WithCancel(ctx)
		c1 := ckptCoordinator(t, study, leaseSites, ckpt, k, kill1)
		addr.Store(c1.Addr())

		errs := make(chan error, 2)
		go reconnectWorker(ctx, &addr, errs, nil)
		go reconnectWorker(ctx, &addr, errs, nil)

		if _, err := c1.Serve(serve1Ctx); err != context.Canceled {
			t.Fatalf("k=%d: first life Serve = %v, want canceled after %d merges", k, err, k)
		}

		// Second life: same checkpoint, fresh port; the workers are still
		// out there redialing.
		c2 := ckptCoordinator(t, study, leaseSites, ckpt, 0, nil)
		if got := c2.Completed(); got < k {
			t.Fatalf("k=%d: restarted coordinator replayed %d committed leases, want >= %d", k, got, k)
		}
		addr.Store(c2.Addr())
		agg, err := c2.Serve(ctx)
		if err != nil {
			t.Fatalf("k=%d: second life Serve: %v", k, err)
		}
		// When every lease already lived in the checkpoint, the second
		// life finishes before the workers reconnect; cancel them out of
		// their redial backoff rather than waiting out their budget.
		cancel()
		for i := 0; i < 2; i++ {
			if err := <-errs; err != nil && !errors.Is(err, context.Canceled) {
				t.Fatalf("k=%d: worker exit: %v", k, err)
			}
		}

		var buf bytes.Buffer
		if err := study.WriteAggregateReport(&buf, study.AggregateResults(agg)); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Errorf("k=%d: crashed-and-restarted report diverges from single-machine run\n--- single-machine\n%s\n--- restarted\n%s",
				k, want, buf.Bytes())
		}
		cancel()
	}
}

// TestWorkerSurvivesFlakyConnection tears the single worker's connection
// mid-survey with a seeded fault injector. The coordinator requeues the
// in-flight lease; the worker reconnects and finishes. The report must be
// byte-identical and the built study reused across the reconnect.
func TestWorkerSurvivesFlakyConnection(t *testing.T) {
	want := singleMachineReport(t)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	study, err := core.NewStudy(testStudyConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer study.Close()

	ckpt := filepath.Join(t.TempDir(), "survey.ckpt")
	c := ckptCoordinator(t, study, 3, ckpt, 0, nil)
	var addr atomic.Value
	addr.Store(c.Addr())

	// The 6th worker write (hello, then spill chunks and commits) tears:
	// a random prefix goes out, then the connection dies under the worker.
	in := faultinject.New(99)
	in.Arm("send", 6)
	errs := make(chan error, 1)
	go reconnectWorker(ctx, &addr, errs, func(cn net.Conn) net.Conn {
		return in.FlakyConn("", "send", cn)
	})

	agg, err := c.Serve(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errs; err != nil {
		t.Fatalf("worker exit: %v", err)
	}
	if in.Count("send") < 6 {
		t.Fatalf("injector saw %d sends; the tear never fired", in.Count("send"))
	}

	var buf bytes.Buffer
	if err := study.WriteAggregateReport(&buf, study.AggregateResults(agg)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("report after mid-survey connection tear diverges from single-machine run\n--- single-machine\n%s\n--- distributed\n%s",
			want, buf.Bytes())
	}
}

// TestWorkerGivesUpWhenCoordinatorStaysDead pins the reconnect brake: with
// nothing listening, Run fails after its attempt budget instead of
// retrying forever.
func TestWorkerGivesUpWhenCoordinatorStaysDead(t *testing.T) {
	// Grab a port that refuses connections by closing a listener.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close()

	start := time.Now()
	err = dist.Run(context.Background(), dist.WorkerConfig{
		Addr:                 deadAddr,
		MaxReconnectAttempts: 3,
		ReconnectBaseDelay:   time.Millisecond,
		ReconnectSeed:        1,
		Build: func([]byte) (dist.CrawlFunc, error) {
			t.Error("Build ran without a coordinator")
			return nil, nil
		},
	})
	if err == nil {
		t.Fatal("Run succeeded against a dead coordinator")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("giving up took %v; backoff cap is broken", elapsed)
	}
}
