package dist

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/logstore"
)

// The coordinator checkpoint is an append-only journal of committed
// leases, framed with the same length-prefixed codec as the wire
// protocol (logstore.WriteFrame). One header frame pins the study and
// lease geometry; every commit frame carries a lease ID and the
// complete spill stream that merged for it. A restarted coordinator
// replays the valid prefix — a torn tail (the crash hit mid-append) is
// truncated, and the leases it lost are simply re-issued — so committed
// work survives any kill while uncommitted work is redone, never
// double-counted.
const (
	ckptVersion = 1

	// frameCkptHeader pins (version, numSites, numFeatures, leaseSites,
	// spec); a checkpoint replays only into the identical survey.
	frameCkptHeader = 0x41
	// frameCkptCommit carries uvarint(leaseID) followed by the lease's
	// raw spill stream bytes.
	frameCkptCommit = 0x42
)

// maxCheckpointPayload bounds one checkpoint frame. A commit frame
// holds a whole lease's spill stream, whose header repeats the full
// site list — far beyond the wire protocol's 1 MiB chunk bound — so
// the checkpoint reader allows what a million-site survey needs while
// still refusing absurd lengths from a corrupt length prefix.
const maxCheckpointPayload = 1 << 28

// checkpoint is an open coordinator journal positioned for appending.
type checkpoint struct {
	f *os.File
}

// ckptHeaderPayload encodes the header frame for the given survey.
func ckptHeaderPayload(cfg CoordinatorConfig) []byte {
	buf := putUvarint(nil, ckptVersion, uint64(cfg.NumSites), uint64(cfg.NumFeatures),
		uint64(cfg.LeaseSites), uint64(len(cfg.Spec)))
	return append(buf, cfg.Spec...)
}

// loadCheckpoint opens (or atomically creates) the checkpoint at path
// and returns the journal positioned for appending plus the committed
// lease streams its valid prefix holds, first commit per lease winning.
// A header that pins a different survey is an error; a torn tail is
// truncated in place so the next append starts on a frame boundary.
func loadCheckpoint(path string, cfg CoordinatorConfig) (*checkpoint, map[int][]byte, error) {
	if _, err := os.Stat(path); os.IsNotExist(err) {
		if err := createCheckpoint(path, cfg); err != nil {
			return nil, nil, err
		}
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("dist: opening checkpoint: %w", err)
	}
	cr := &countingReader{r: f}
	br := bufio.NewReaderSize(cr, 1<<16)

	// The header must be fully intact: atomic creation guarantees a
	// durable checkpoint never has a torn one, so any mismatch here
	// means the file belongs to a different survey or is not a
	// checkpoint at all.
	hf, err := logstore.ReadFrame(br, maxCheckpointPayload)
	if err != nil || hf.Type != frameCkptHeader {
		f.Close()
		return nil, nil, fmt.Errorf("dist: %s is not a coordinator checkpoint", path)
	}
	if !bytes.Equal(hf.Payload, ckptHeaderPayload(cfg)) {
		f.Close()
		return nil, nil, fmt.Errorf("dist: checkpoint %s describes a different survey (sites, corpus, lease size, or spec changed)", path)
	}

	commits := make(map[int][]byte)
	good := cr.n - int64(br.Buffered())
	for {
		fr, err := logstore.ReadFrame(br, maxCheckpointPayload)
		if err == io.EOF {
			break
		}
		if err != nil || fr.Type != frameCkptCommit {
			// Torn tail (the crash hit mid-append) or trailing garbage:
			// everything before it is intact, everything from here on
			// is uncommitted. Truncate so appends restart on a frame
			// boundary.
			if terr := f.Truncate(good); terr != nil {
				f.Close()
				return nil, nil, fmt.Errorf("dist: truncating torn checkpoint tail: %w", terr)
			}
			break
		}
		r := bytes.NewReader(fr.Payload)
		id, err := readUvarint(r, "checkpoint lease id")
		if err != nil {
			f.Close()
			return nil, nil, err
		}
		stream := fr.Payload[len(fr.Payload)-r.Len():]
		if _, dup := commits[int(id)]; !dup {
			commits[int(id)] = stream
		}
		good = cr.n - int64(br.Buffered())
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("dist: seeking checkpoint append point: %w", err)
	}
	return &checkpoint{f: f}, commits, nil
}

// createCheckpoint writes a fresh header-only checkpoint atomically:
// tmp file + fsync + rename + directory fsync, so a crash during
// creation leaves either no checkpoint or a complete one — never a
// torn header a later open would misread.
func createCheckpoint(path string, cfg CoordinatorConfig) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("dist: creating checkpoint: %w", err)
	}
	err = logstore.WriteFrame(tmp, frameCkptHeader, ckptHeaderPayload(cfg))
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp.Name(), path)
	}
	if err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("dist: creating checkpoint: %w", err)
	}
	if err := fsyncDir(dir); err != nil {
		return fmt.Errorf("dist: creating checkpoint: %w", err)
	}
	return nil
}

// commit journals one merged lease and fsyncs before returning: once
// the coordinator reports a lease merged, no later crash can lose it.
func (ck *checkpoint) commit(id int, stream []byte) error {
	payload := putUvarint(nil, uint64(id))
	payload = append(payload, stream...)
	if err := logstore.WriteFrame(ck.f, frameCkptCommit, payload); err != nil {
		return fmt.Errorf("dist: journaling lease %d: %w", id, err)
	}
	if err := ck.f.Sync(); err != nil {
		return fmt.Errorf("dist: syncing checkpoint: %w", err)
	}
	return nil
}

func (ck *checkpoint) close() error {
	if ck == nil || ck.f == nil {
		return nil
	}
	err := ck.f.Close()
	ck.f = nil
	return err
}

// countingReader counts consumed bytes so replay can locate the last
// intact frame boundary (count minus whatever the bufio layer still
// buffers).
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// fsyncDir fsyncs a directory so a just-renamed entry survives a crash.
func fsyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
