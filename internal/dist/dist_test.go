package dist_test

import (
	"bytes"
	"context"
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/measure"
	"repro/internal/stats"
)

// testStudyConfig is the shared small-but-real survey every loopback test
// measures: small enough to crawl quickly, large enough for several leases.
func testStudyConfig() core.Config {
	return core.Config{
		Sites:  18,
		Seed:   7,
		Rounds: 2,
		Cases:  []measure.Case{measure.CaseDefault, measure.CaseBlocking},
	}
}

// singleMachineReport runs the study spill-only on one machine and renders
// the aggregate report: the byte-level ground truth a distributed run must
// reproduce.
func singleMachineReport(t *testing.T) []byte {
	t.Helper()
	cfg := testStudyConfig()
	cfg.Shards = 2
	cfg.ShardWorkers = 2
	cfg.SpillOnly = true
	study, err := core.NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer study.Close()
	results, err := study.RunSurvey()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := study.WriteAggregateReport(&buf, results); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// coordinator starts a loopback coordinator for the test study.
func coordinator(t *testing.T, study *core.Study, leaseSites int, timeout time.Duration) *dist.Coordinator {
	t.Helper()
	spec, err := study.Spec()
	if err != nil {
		t.Fatal(err)
	}
	c, err := dist.Listen("127.0.0.1:0", dist.CoordinatorConfig{
		Spec:             spec,
		NumSites:         len(study.Web.Sites),
		NumFeatures:      len(study.Registry.Features),
		Standards:        stats.StandardsOf(study.Registry),
		Cases:            study.Cfg.Cases,
		LeaseSites:       leaseSites,
		HeartbeatTimeout: timeout,
		Logf:             t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// worker runs one worker against addr until the coordinator shuts it down
// or ctx cancels, reporting its exit error on errs.
func worker(ctx context.Context, addr string, errs chan<- error, wrap func(dist.CrawlFunc) dist.CrawlFunc) {
	errs <- dist.Run(ctx, dist.WorkerConfig{
		Addr:              addr,
		HeartbeatInterval: 50 * time.Millisecond,
		Build: func(spec []byte) (dist.CrawlFunc, error) {
			s, err := core.StudyFromSpec(spec, core.Config{Shards: 1, ShardWorkers: 2})
			if err != nil {
				return nil, err
			}
			crawl := dist.CrawlFunc(s.CrawlSites)
			if wrap != nil {
				crawl = wrap(crawl)
			}
			return crawl, nil
		},
	})
}

// distributedReport runs the study across workerCount loopback workers and
// renders the coordinator's merged aggregate report.
func distributedReport(t *testing.T, workerCount, leaseSites int) []byte {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	study, err := core.NewStudy(testStudyConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer study.Close()

	c := coordinator(t, study, leaseSites, 5*time.Second)
	errs := make(chan error, workerCount)
	for i := 0; i < workerCount; i++ {
		go worker(ctx, c.Addr(), errs, nil)
	}
	agg, err := c.Serve(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < workerCount; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("worker exit: %v", err)
		}
	}

	var buf bytes.Buffer
	if err := study.WriteAggregateReport(&buf, study.AggregateResults(agg)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestLoopbackMatchesSingleMachine is the tentpole equivalence proof: a
// coordinator-merged report is byte-identical to a single-machine
// spill-only run at several worker counts.
func TestLoopbackMatchesSingleMachine(t *testing.T) {
	want := singleMachineReport(t)
	for _, tc := range []struct {
		name       string
		workers    int
		leaseSites int
	}{
		{"1worker", 1, 5},
		{"2workers", 2, 5},
		{"3workers_tinyLeases", 3, 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := distributedReport(t, tc.workers, tc.leaseSites)
			if !bytes.Equal(got, want) {
				t.Errorf("distributed report diverges from single-machine run\n--- single-machine\n%s\n--- distributed\n%s", want, got)
			}
		})
	}
}

// TestWorkerKilledMidRun kills one of two workers mid-crawl and asserts the
// coordinator re-issues its lease and still produces the byte-identical
// report: the failure path loses no results and duplicates none.
func TestWorkerKilledMidRun(t *testing.T) {
	want := singleMachineReport(t)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	study, err := core.NewStudy(testStudyConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer study.Close()

	// Short heartbeat timeout so the victim's death is noticed quickly.
	c := coordinator(t, study, 3, time.Second)

	victimCtx, kill := context.WithCancel(ctx)
	defer kill()
	var victimLeases atomic.Int32
	errs := make(chan error, 2)
	// The victim: its second lease cancels its own context mid-crawl, so
	// it dies after streaming part of that lease's spill data.
	go worker(victimCtx, c.Addr(), errs, func(crawl dist.CrawlFunc) dist.CrawlFunc {
		return func(ctx context.Context, sites []int, spill io.Writer) error {
			if victimLeases.Add(1) == 2 {
				if err := crawl(ctx, sites[:1], spill); err != nil {
					return err
				}
				kill()
				<-ctx.Done()
				return ctx.Err()
			}
			return crawl(ctx, sites, spill)
		}
	})
	// The survivor finishes the survey, including the re-issued lease.
	go worker(ctx, c.Addr(), errs, nil)

	agg, err := c.Serve(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := victimLeases.Load(); got < 2 {
		t.Fatalf("victim worker saw %d leases; the kill never triggered", got)
	}

	var buf bytes.Buffer
	if err := study.WriteAggregateReport(&buf, study.AggregateResults(agg)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("report after worker kill diverges from single-machine run\n--- single-machine\n%s\n--- distributed\n%s", want, buf.Bytes())
	}

	// One error is the victim's cancellation; the survivor exits clean.
	sawCancel, sawClean := false, false
	for i := 0; i < 2; i++ {
		switch err := <-errs; err {
		case nil:
			sawClean = true
		case context.Canceled:
			sawCancel = true
		default:
			t.Fatalf("unexpected worker exit: %v", err)
		}
	}
	if !sawCancel || !sawClean {
		t.Errorf("expected one canceled and one clean worker exit (cancel=%v clean=%v)", sawCancel, sawClean)
	}
}

// TestSingleLeaseWholeSurvey pins the degenerate geometry: one lease
// covering the whole site list, one worker, clean Shutdown at the end.
func TestSingleLeaseWholeSurvey(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	study, err := core.NewStudy(testStudyConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer study.Close()

	c := coordinator(t, study, 100, 5*time.Second) // one lease: first worker takes it all
	errs := make(chan error, 2)
	var once sync.Once
	finished := make(chan struct{})
	go worker(ctx, c.Addr(), errs, func(crawl dist.CrawlFunc) dist.CrawlFunc {
		return func(ctx context.Context, sites []int, spill io.Writer) error {
			defer once.Do(func() { close(finished) })
			return crawl(ctx, sites, spill)
		}
	})
	agg, err := c.Serve(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if agg == nil {
		t.Fatal("nil aggregate from Serve")
	}
	<-finished
	if err := <-errs; err != nil {
		t.Fatalf("worker exit: %v", err)
	}
}

// TestAbortWithIdleWorkersReturns pins the shutdown path: cancelling Serve
// while workers outnumber leases (one worker crawls, the other idles in the
// coordinator's grant loop) must return promptly instead of deadlocking on
// the idle handler.
func TestAbortWithIdleWorkersReturns(t *testing.T) {
	study, err := core.NewStudy(testStudyConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer study.Close()

	// One lease for the whole site list: the second worker has nothing to
	// do and parks in the handler's grant select.
	c := coordinator(t, study, 100, 5*time.Second)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	crawlStarted := make(chan struct{})
	var startedOnce sync.Once
	errs := make(chan error, 2)
	block := func(crawl dist.CrawlFunc) dist.CrawlFunc {
		return func(ctx context.Context, sites []int, spill io.Writer) error {
			startedOnce.Do(func() { close(crawlStarted) })
			<-ctx.Done() // crawl "forever" — only cancellation ends it
			return ctx.Err()
		}
	}
	go worker(ctx, c.Addr(), errs, block)
	go worker(ctx, c.Addr(), errs, block)

	serveDone := make(chan error, 1)
	go func() {
		_, err := c.Serve(ctx)
		serveDone <- err
	}()
	<-crawlStarted
	cancel()
	select {
	case err := <-serveDone:
		if err != context.Canceled {
			t.Fatalf("Serve returned %v; want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Serve did not return after cancellation: idle-handler shutdown deadlock")
	}
	for i := 0; i < 2; i++ {
		if err := <-errs; err == nil {
			t.Error("worker exited clean from an aborted survey; want an error")
		}
	}
}
