package dist

// White-box tests for the coordinator checkpoint journal: creation,
// torn-tail truncation, survey pinning, and seed-from-spills promotion.
// The end-to-end crash-and-restart equivalence proof lives in
// crash_test.go.

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/measure"
)

func wbConfig() CoordinatorConfig {
	return CoordinatorConfig{
		Spec:        []byte("spec"),
		NumSites:    wbSites,
		NumFeatures: wbFeatures,
		Standards:   wbStandards(),
		Cases:       []measure.Case{measure.CaseDefault, measure.CaseBlocking},
		LeaseSites:  wbLease,
	}.normalized()
}

// TestCheckpointRoundTrip pins the journal cycle: create, commit, reload,
// replay — and that reloading an empty checkpoint commits nothing.
func TestCheckpointRoundTrip(t *testing.T) {
	cfg := wbConfig()
	path := filepath.Join(t.TempDir(), "survey.ckpt")

	ck, commits, err := loadCheckpoint(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(commits) != 0 {
		t.Fatalf("fresh checkpoint reports %d commits, want 0", len(commits))
	}
	stream0 := []byte("lease zero stream")
	stream1 := []byte("lease one stream")
	if err := ck.commit(0, stream0); err != nil {
		t.Fatal(err)
	}
	if err := ck.commit(1, stream1); err != nil {
		t.Fatal(err)
	}
	if err := ck.close(); err != nil {
		t.Fatal(err)
	}

	ck2, commits, err := loadCheckpoint(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.close()
	if len(commits) != 2 || string(commits[0]) != string(stream0) || string(commits[1]) != string(stream1) {
		t.Fatalf("replayed commits = %q, want the two journaled streams", commits)
	}
}

// TestCheckpointTruncatesTornTail appends garbage past the last intact
// commit — the shape a kill mid-append leaves — and asserts reload keeps
// every intact commit, truncates the tail, and appends cleanly afterward.
func TestCheckpointTruncatesTornTail(t *testing.T) {
	cfg := wbConfig()
	path := filepath.Join(t.TempDir(), "survey.ckpt")
	ck, _, err := loadCheckpoint(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.commit(0, []byte("intact")); err != nil {
		t.Fatal(err)
	}
	if err := ck.close(); err != nil {
		t.Fatal(err)
	}
	intact, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Re-journal a second commit, then tear it at every possible byte —
	// every torn tail an interrupted append can produce.
	ck2, _, err := loadCheckpoint(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ck2.commit(1, []byte("will be torn")); err != nil {
		t.Fatal(err)
	}
	ck2.close()
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := len(intact); cut < len(full); cut++ {
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		ck3, commits, err := loadCheckpoint(path, cfg)
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		if len(commits) != 1 || string(commits[0]) != "intact" {
			ck3.close()
			t.Fatalf("cut=%d: commits = %q, want only the intact lease", cut, commits)
		}
		// The torn tail must be gone and the journal appendable: a new
		// commit must survive its own reload.
		if err := ck3.commit(2, []byte("after repair")); err != nil {
			t.Fatalf("cut=%d: append after repair: %v", cut, err)
		}
		ck3.close()
		ck4, commits, err := loadCheckpoint(path, cfg)
		if err != nil {
			t.Fatalf("cut=%d: reload after repair: %v", cut, err)
		}
		ck4.close()
		if len(commits) != 2 || string(commits[2]) != "after repair" {
			t.Fatalf("cut=%d: post-repair commits = %q", cut, commits)
		}
	}
}

// TestCheckpointPinsSurvey: a checkpoint reopened with a different study
// shape or spec is refused rather than silently merging foreign results.
func TestCheckpointPinsSurvey(t *testing.T) {
	cfg := wbConfig()
	path := filepath.Join(t.TempDir(), "survey.ckpt")
	ck, _, err := loadCheckpoint(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ck.close()

	for name, mutate := range map[string]func(*CoordinatorConfig){
		"sites":    func(c *CoordinatorConfig) { c.NumSites++ },
		"features": func(c *CoordinatorConfig) { c.NumFeatures++ },
		"lease":    func(c *CoordinatorConfig) { c.LeaseSites++ },
		"spec":     func(c *CoordinatorConfig) { c.Spec = []byte("other") },
	} {
		other := wbConfig()
		mutate(&other)
		if ck, _, err := loadCheckpoint(path, other); err == nil {
			ck.close()
			t.Errorf("%s: checkpoint accepted a different survey", name)
		}
	}

	// A file that is not a checkpoint at all.
	junk := filepath.Join(t.TempDir(), "junk.ckpt")
	if err := os.WriteFile(junk, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	if ck, _, err := loadCheckpoint(junk, cfg); err == nil {
		ck.close()
		t.Error("loadCheckpoint accepted junk")
	}
}

// TestCheckpointFirstCommitWins: duplicate commit frames for one lease —
// possible when a re-issued lease commits twice across coordinator lives —
// replay the first, matching the in-memory dedup rule.
func TestCheckpointFirstCommitWins(t *testing.T) {
	cfg := wbConfig()
	path := filepath.Join(t.TempDir(), "survey.ckpt")
	ck, _, err := loadCheckpoint(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.commit(0, []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := ck.commit(0, []byte("second")); err != nil {
		t.Fatal(err)
	}
	ck.close()
	ck2, commits, err := loadCheckpoint(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ck2.close()
	if string(commits[0]) != "first" {
		t.Fatalf("commits[0] = %q, want the first journaled stream", commits[0])
	}
}

// TestListenReplaysCheckpoint drives the replay path through Listen: a
// coordinator restarted over a checkpoint holding one committed lease
// starts with that lease merged and only the other pending.
func TestListenReplaysCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "survey.ckpt")

	mk := func() *Coordinator {
		t.Helper()
		cfg := wbConfig()
		cfg.CheckpointPath = path
		c, err := Listen("127.0.0.1:0", cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.ln.Close(); c.ckpt.close() })
		return c
	}

	c1 := mk()
	if err := c1.mergeLease(0, wbLeaseStream(t, c1.leases[0])); err != nil {
		t.Fatal(err)
	}
	c1.ln.Close()
	c1.mu.Lock()
	c1.ckpt.close()
	c1.ckpt = nil
	c1.mu.Unlock()

	c2 := mk()
	if got := c2.Completed(); got != 1 {
		t.Fatalf("restarted coordinator Completed() = %d, want 1", got)
	}
	if !c2.completed[0] || c2.completed[1] {
		t.Fatalf("restarted completion set = %v, want only lease 0", c2.completed)
	}
	if got := c2.agg.MeasuredCount(); got != wbLease {
		t.Fatalf("restarted MeasuredCount = %d, want %d", got, wbLease)
	}
	// Only the unfinished lease is pending.
	if got := len(c2.pending); got != 1 {
		t.Fatalf("pending queue holds %d leases, want 1", got)
	}
	if id := <-c2.pending; id != 1 {
		t.Fatalf("pending lease = %d, want 1", id)
	}
}

// TestSeedFromSpills promotes a crashed single-machine run: a spill file
// durably covering all of lease 0 and only part of lease 1 seeds exactly
// lease 0; lease 1 stays pending for workers to re-crawl whole.
func TestSeedFromSpills(t *testing.T) {
	dir := t.TempDir()
	spill := filepath.Join(dir, "shard-000.spill")
	f, err := os.Create(spill)
	if err != nil {
		t.Fatal(err)
	}
	// Sites 0..5 committed: lease 0 (sites 0-3) fully covered, lease 1
	// (sites 4-7) only partially.
	if _, err := f.Write(wbLeaseStream(t, []int{0, 1, 2, 3, 4, 5})); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	cfg := wbConfig()
	cfg.SeedSpills = []string{spill}
	cfg.Domains = make([]string, wbSites)
	c, err := Listen("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.ln.Close()
	if got := c.Completed(); got != 1 {
		t.Fatalf("Completed() after seeding = %d, want 1", got)
	}
	if !c.completed[0] || c.completed[1] {
		t.Fatalf("seeded completion set = %v, want only lease 0", c.completed)
	}
	if got := c.agg.MeasuredCount(); got != wbLease {
		t.Fatalf("seeded MeasuredCount = %d, want %d (partial lease must not leak sites)", got, wbLease)
	}
	if id := <-c.pending; id != 1 {
		t.Fatalf("pending lease = %d, want 1", id)
	}

	// Seeding without the domain list is an error, not silent no-op.
	bad := wbConfig()
	bad.SeedSpills = []string{spill}
	if c, err := Listen("127.0.0.1:0", bad); err == nil {
		c.ln.Close()
		t.Error("Listen accepted SeedSpills without Domains")
	}
}
