// Package synthweb deterministically generates the synthetic Alexa-10k web
// the survey crawls: ranked sites with page trees, first-party application
// scripts, and third-party advertising/tracking scripts, calibrated so that
// dynamically measuring the generated web reproduces the paper's per-standard
// ground truth (Table 2) and aggregate feature-popularity claims (§5.3).
//
// Calibration happens in two stages. The Profile assigns every corpus
// feature a target site count and every (site, standard) pair a party
// attribution (first-party, ad network, tracker, or dual); materialization
// then emits concrete HTML and WebScript whose dynamic behaviour realizes
// the profile. The analysis pipeline only ever sees the crawler's
// measurements — never the profile.
package synthweb
