package synthweb

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/dom"
	"repro/internal/html"
	"repro/internal/standards"
	"repro/internal/webidl"
	"repro/internal/webscript"
)

// Gating parameters: a slice of (site, standard) pairs hides all its
// invocations behind interactions or rarely-visited leaf pages, which is
// what gives the paper's Table 3 (new standards per crawl round) and
// Figure 9 (human vs monkey) their non-trivial dynamics.
const (
	gatedShare        = 0.45 // fraction of eligible (site, standard) pairs that are gated
	gatedMinSites     = 10   // standards on fewer target sites are never gated
	humanOnlyShare    = 0.006
	humanOnlyMinSites = 100
)

// sitePlan is the materialized form of one site: page tree, HTML, and the
// per-party scripts every page serves.
type sitePlan struct {
	pages  map[string]*pagePlan // page key → plan
	byPath map[string]*pagePlan // URL path → plan
	// adHost/trackerHost/dualHost are the site's chosen third-party
	// service domains.
	partyHost map[Party]string
}

// pagePlan is one page of a site.
type pagePlan struct {
	key  string
	path string
	html string
	// firstPartySource is the page's "/static/<key>.js" WebScript.
	firstPartySource string
	// thirdPartySource maps ad/tracker/dual parties to the script their
	// domain serves for this page.
	thirdPartySource map[Party]string
}

// pageKeys returns all page keys of the fixed site layout: a home page,
// three sections, and five leaves per section. The crawler's 13-page BFS
// visits home + 3 sections + 9 of the 15 leaves.
func pageKeys() []string {
	keys := []string{"home", "sec1", "sec2", "sec3"}
	for s := 1; s <= 3; s++ {
		for p := 1; p <= 5; p++ {
			keys = append(keys, fmt.Sprintf("sec%dp%d", s, p))
		}
	}
	return keys
}

func pathOfKey(key string) string {
	if key == "home" {
		return "/"
	}
	if len(key) == 4 { // secN
		return "/" + key
	}
	return fmt.Sprintf("/%s/p%s", key[:4], key[5:]) // secNpM → /secN/pM
}

// placement is one statement's location in the site.
type placement struct {
	pageKey  string
	event    webscript.EventType
	selector string
	interval int
	load     bool // immediate execution at script parse time
	stmt     webscript.Stmt
}

// buildPlan materializes a site deterministically from its profile
// assignments.
func (w *Web) buildPlan(site *Site) *sitePlan {
	rng := rand.New(rand.NewSource(w.Cfg.Seed ^ (int64(site.Index)+1)*2654435761))
	plan := &sitePlan{
		pages:     make(map[string]*pagePlan),
		byPath:    make(map[string]*pagePlan),
		partyHost: make(map[Party]string),
	}
	plan.partyHost[PartyAd] = w.AdDomains[(site.Index*7)%len(w.AdDomains)]
	plan.partyHost[PartyTracker] = w.TrackerDomains[(site.Index*13)%len(w.TrackerDomains)]
	plan.partyHost[PartyDual] = w.DualDomains[(site.Index*17)%len(w.DualDomains)]

	keys := pageKeys()
	for _, k := range keys {
		plan.pages[k] = &pagePlan{key: k, path: pathOfKey(k), thirdPartySource: make(map[Party]string)}
		plan.byPath[plan.pages[k].path] = plan.pages[k]
	}

	placements := w.placeAssignments(site, rng)

	// Assemble per (party, page) scripts.
	type scriptKey struct {
		party Party
		page  string
	}
	scripts := make(map[scriptKey]*webscript.Script)
	scriptOf := func(party Party, page string) *webscript.Script {
		k := scriptKey{party, page}
		if s, ok := scripts[k]; ok {
			return s
		}
		s := &webscript.Script{}
		scripts[k] = s
		return s
	}
	handlerOf := func(s *webscript.Script, ev webscript.EventType, sel string, interval int) *webscript.Handler {
		if interval == 0 {
			interval = 1 // normalize to the parser's default
		}
		for _, h := range s.Handlers {
			if h.Event == ev && h.Selector == sel && h.Interval == interval {
				return h
			}
		}
		h := &webscript.Handler{Event: ev, Selector: sel, Interval: interval}
		s.Handlers = append(s.Handlers, h)
		return h
	}

	for _, party := range []Party{PartyFirst, PartyAd, PartyTracker, PartyDual} {
		pls := placements[party]
		for _, pl := range pls {
			s := scriptOf(party, pl.pageKey)
			if pl.load {
				s.Immediate = append(s.Immediate, pl.stmt)
				continue
			}
			h := handlerOf(s, pl.event, pl.selector, pl.interval)
			h.Body = append(h.Body, pl.stmt)
		}
	}

	// First-party navigation affordances: a click handler per section
	// page driving deeper navigation, plus one on home.
	nav := scriptOf(PartyFirst, "home")
	h := handlerOf(nav, webscript.EventClick, "#act-0", 1)
	h.Body = append(h.Body, webscript.Navigate{Path: "/sec1/p2"})
	for i := 1; i <= 3; i++ {
		s := scriptOf(PartyFirst, fmt.Sprintf("sec%d", i))
		h := handlerOf(s, webscript.EventClick, "#act-1", 1)
		h.Body = append(h.Body, webscript.Navigate{Path: fmt.Sprintf("/sec%d/p%d", i, 1+rng.Intn(5))})
	}
	// Ad popup behaviour: clicking the ad element attempts an external
	// navigation (intercepted by the crawler).
	for _, party := range []Party{PartyAd, PartyDual} {
		for _, k := range []string{"home", "sec1"} {
			if s, ok := scripts[scriptKey{party, k}]; ok {
				h := handlerOf(s, webscript.EventClick, "#ad-link", 1)
				h.Body = append(h.Body, webscript.Navigate{Path: "http://" + plan.partyHost[party] + "/landing"})
			}
		}
	}

	// Serialize scripts and render pages.
	for _, k := range keys {
		page := plan.pages[k]
		if s, ok := scripts[scriptKey{PartyFirst, k}]; ok {
			page.firstPartySource = webscript.Format(s)
		} else {
			page.firstPartySource = "// no first-party behaviour on this page\n"
		}
		for _, party := range []Party{PartyAd, PartyTracker, PartyDual} {
			if s, ok := scripts[scriptKey{party, k}]; ok {
				page.thirdPartySource[party] = webscript.Format(s)
			}
		}
		page.html = w.renderPage(site, plan, page, rng)
	}
	return plan
}

// placeAssignments maps each (feature, party) obligation to a concrete
// placement, honouring the gating rules.
func (w *Web) placeAssignments(site *Site, rng *rand.Rand) map[Party][]placement {
	assigns := w.assign[site.Index]
	out := make(map[Party][]placement)

	// Group by standard, preserving deterministic order.
	type group struct {
		std     standards.Abbrev
		party   Party
		members []Assignment
	}
	var groups []*group
	index := make(map[standards.Abbrev]*group)
	for _, a := range assigns {
		g, ok := index[a.Feature.Standard]
		if !ok {
			g = &group{std: a.Feature.Standard, party: a.Party}
			index[a.Feature.Standard] = g
			groups = append(groups, g)
		}
		g.members = append(g.members, a)
	}

	leafKeys := pageKeys()[4:]
	sectionKeys := pageKeys()[1:4]

	for _, g := range groups {
		target := len(w.Profile.SitesUsing(g.std))
		gated := target >= gatedMinSites && rng.Float64() < gatedShare
		humanOnly := target >= humanOnlyMinSites && rng.Float64() < humanOnlyShare

		for i, a := range g.members {
			stmt := stmtFor(a, rng)
			var pl placement
			switch {
			case humanOnly:
				// Mouse-movement-gated: the monkey horde does
				// not move the pointer, but human browsing
				// does (Figure 9's outliers).
				pl = placement{pageKey: "home", event: webscript.EventMove, stmt: stmt}
			case gated:
				pl = w.gatedPlacement(stmt, leafKeys, sectionKeys, rng)
			case i == 0:
				// The group's first instance loads on the home
				// page, guaranteeing the standard is observable
				// on every assigned site.
				pl = placement{pageKey: "home", load: true, stmt: stmt}
			default:
				pl = w.freePlacement(stmt, rng)
			}
			out[g.party] = append(out[g.party], pl)
		}
	}
	return out
}

// stmtFor converts an assignment into a statement with an invocation
// multiplicity (hot loops batch many calls; Table 1's invocation total
// comes from these counts).
func stmtFor(a Assignment, rng *rand.Rand) webscript.Stmt {
	if a.Feature.Kind == webidl.Method {
		count := 1 + rng.Intn(12)
		if rng.Float64() < 0.08 {
			count += 20 + rng.Intn(220)
		}
		return webscript.Invoke{Interface: a.Feature.Interface, Member: a.Feature.Member, Count: count}
	}
	return webscript.SetProp{Interface: a.Feature.Interface, Member: a.Feature.Member}
}

// gatedPlacement hides a statement deep in the site: on a leaf page (only
// observed in rounds whose BFS sample reaches that leaf) and often behind an
// interaction on top. The per-round discovery probability of a gated
// placement is roughly the leaf-visit rate (~0.6), which produces the
// paper's Table 3 decay.
func (w *Web) gatedPlacement(stmt webscript.Stmt, leafKeys, sectionKeys []string, rng *rand.Rand) placement {
	leaf := leafKeys[rng.Intn(len(leafKeys))]
	switch r := rng.Float64(); {
	case r < 0.55:
		// Leaf-page load.
		return placement{pageKey: leaf, load: true, stmt: stmt}
	case r < 0.80:
		// Click on a specific button on a leaf page.
		return placement{
			pageKey:  leaf,
			event:    webscript.EventClick,
			selector: fmt.Sprintf("#act-%d", rng.Intn(4)),
			stmt:     stmt,
		}
	case r < 0.90:
		return placement{pageKey: leaf, event: webscript.EventInput, selector: "#q", stmt: stmt}
	default:
		// A slow timer on a leaf page: fires late in the 30-second
		// dwell.
		return placement{pageKey: leaf, event: webscript.EventTimer, interval: 17, stmt: stmt}
	}
}

// freePlacement spreads non-critical instances across the site.
func (w *Web) freePlacement(stmt webscript.Stmt, rng *rand.Rand) placement {
	keys := pageKeys()
	var pageKey string
	switch r := rng.Float64(); {
	case r < 0.45:
		pageKey = "home"
	case r < 0.75:
		pageKey = keys[1+rng.Intn(3)] // a section
	default:
		pageKey = keys[4+rng.Intn(len(keys)-4)] // a leaf
	}
	switch r := rng.Float64(); {
	case r < 0.70:
		return placement{pageKey: pageKey, load: true, stmt: stmt}
	case r < 0.82:
		return placement{pageKey: pageKey, event: webscript.EventClick, selector: fmt.Sprintf("#act-%d", rng.Intn(4)), stmt: stmt}
	case r < 0.90:
		return placement{pageKey: pageKey, event: webscript.EventScroll, stmt: stmt}
	case r < 0.96:
		return placement{pageKey: pageKey, event: webscript.EventInput, selector: "#q", stmt: stmt}
	default:
		ivals := []int{3, 7, 11}
		return placement{pageKey: pageKey, event: webscript.EventTimer, interval: ivals[rng.Intn(len(ivals))], stmt: stmt}
	}
}

// renderPage builds the page's HTML document.
func (w *Web) renderPage(site *Site, plan *sitePlan, page *pagePlan, rng *rand.Rand) string {
	doc := dom.NewDocument()
	htmlEl := dom.NewElement("html")
	doc.AppendChild(htmlEl)

	head := dom.NewElement("head")
	htmlEl.AppendChild(head)
	meta := dom.NewElement("meta")
	meta.SetAttr("charset", "utf-8")
	head.AppendChild(meta)
	title := dom.NewElement("title")
	title.AppendChild(dom.NewText(fmt.Sprintf("%s — %s", site.Domain, page.key)))
	head.AppendChild(title)

	appScript := dom.NewElement("script")
	appScript.SetAttr("src", "/static/"+page.key+".js")
	head.AppendChild(appScript)

	body := dom.NewElement("body")
	htmlEl.AppendChild(body)

	// Navigation links.
	navEl := dom.NewElement("nav")
	body.AppendChild(navEl)
	for _, href := range w.pageLinks(page.key, rng) {
		a := dom.NewElement("a")
		a.SetAttr("href", href)
		a.AppendChild(dom.NewText(linkLabel(href)))
		navEl.AppendChild(a)
	}
	// Member sites advertise their login wall from the home page; the
	// open-web crawl hits the wall, a credentialed crawl goes through
	// (paper §7.3).
	if page.key == "home" && w.HasMembersArea(site) {
		login := dom.NewElement("a")
		login.SetAttr("href", "/account")
		login.SetAttr("id", "login")
		login.AppendChild(dom.NewText("Sign in"))
		navEl.AppendChild(login)
	}

	// Content with action buttons and a search field.
	mainEl := dom.NewElement("div")
	mainEl.SetAttr("id", "content")
	body.AppendChild(mainEl)
	for i := 0; i < 2+rng.Intn(3); i++ {
		p := dom.NewElement("p")
		p.AppendChild(dom.NewText(loremText(rng)))
		mainEl.AppendChild(p)
	}
	for i := 0; i < 4; i++ {
		btn := dom.NewElement("button")
		btn.SetAttr("id", fmt.Sprintf("act-%d", i))
		btn.SetAttr("data-action", fmt.Sprintf("action-%d", i))
		btn.AppendChild(dom.NewText(fmt.Sprintf("Action %d", i)))
		mainEl.AppendChild(btn)
	}
	form := dom.NewElement("form")
	input := dom.NewElement("input")
	input.SetAttr("id", "q")
	input.SetAttr("type", "text")
	input.SetAttr("name", "q")
	form.AppendChild(input)
	mainEl.AppendChild(form)

	// Third-party script tags and the ad container.
	hasAd := false
	for _, party := range []Party{PartyAd, PartyTracker, PartyDual} {
		src, ok := page.thirdPartySource[party]
		if !ok || src == "" {
			continue
		}
		tag := dom.NewElement("script")
		tag.SetAttr("src", fmt.Sprintf("http://%s/tags/%s/%s.js", plan.partyHost[party], site.Domain, page.key))
		body.AppendChild(tag)
		if party == PartyAd || party == PartyDual {
			hasAd = true
		}
	}
	if hasAd {
		ad := dom.NewElement("div")
		ad.SetAttr("class", "ad-banner")
		adLink := dom.NewElement("a")
		adLink.SetAttr("id", "ad-link")
		adLink.SetAttr("href", "http://"+plan.partyHost[PartyAd]+"/landing")
		adLink.AppendChild(dom.NewText("Sponsored offer"))
		ad.AppendChild(adLink)
		body.AppendChild(ad)
	}

	return html.Render(doc)
}

// pageLinks returns the local (and one external) links of a page.
func (w *Web) pageLinks(key string, rng *rand.Rand) []string {
	var links []string
	switch {
	case key == "home":
		links = append(links, "/sec1", "/sec2", "/sec3")
		links = append(links, fmt.Sprintf("/sec%d/p%d", 1+rng.Intn(3), 1+rng.Intn(5)))
		links = append(links, fmt.Sprintf("/sec%d/p%d", 1+rng.Intn(3), 1+rng.Intn(5)))
	case strings.HasPrefix(key, "sec") && len(key) == 4:
		for p := 1; p <= 5; p++ {
			links = append(links, fmt.Sprintf("/%s/p%d", key, p))
		}
		links = append(links, "/")
	default: // a leaf: cross-links into other sections keep the BFS
		// candidate pool rich, as real article pages link sideways
		sec := key[:4]
		links = append(links, "/"+sec, "/", "/sec1", "/sec2", "/sec3")
		links = append(links, fmt.Sprintf("/%s/p%d", sec, 1+rng.Intn(5)))
		links = append(links, fmt.Sprintf("/%s/p%d", sec, 1+rng.Intn(5)))
		links = append(links, fmt.Sprintf("/sec%d/p%d", 1+rng.Intn(3), 1+rng.Intn(5)))
	}
	links = append(links, "http://partner-offers.example/deals")
	return dedupe(links)
}

func dedupe(in []string) []string {
	seen := make(map[string]bool, len(in))
	out := in[:0]
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

func linkLabel(href string) string {
	href = strings.TrimPrefix(href, "http://")
	href = strings.Trim(href, "/")
	if href == "" {
		return "home"
	}
	return strings.ReplaceAll(href, "/", " ")
}

var loremWords = []string{
	"latency", "budget", "render", "stream", "cache", "signal", "vector",
	"packet", "session", "module", "layout", "metric", "canvas", "widget",
	"origin", "socket", "beacon", "cipher", "frame", "worker",
}

func loremText(rng *rand.Rand) string {
	n := 8 + rng.Intn(18)
	words := make([]string, n)
	for i := range words {
		words[i] = loremWords[rng.Intn(len(loremWords))]
	}
	return strings.Join(words, " ") + "."
}

// PagePaths returns the URL paths of the site layout in BFS-friendly order
// (used by tests and the crawler's validation tooling).
func PagePaths() []string {
	keys := pageKeys()
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = pathOfKey(k)
	}
	sort.Strings(out[1:]) // keep "/" first, rest sorted for determinism
	return out
}
