package synthweb

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/standards"
	"repro/internal/webapi"
	"repro/internal/webidl"
)

// Party attributes a (site, standard) usage to the script origin carrying
// it. The attribution is exclusive per (site, standard): all of a standard's
// invocations on a given site come from one party class, which is what makes
// the paper's block-rate definition (no feature of the standard executes
// under blocking) reproducible.
type Party int8

const (
	// PartyFirst is the site's own application code (never blocked).
	PartyFirst Party = iota
	// PartyAd is an advertising network script (blocked by AdBlock Plus).
	PartyAd
	// PartyTracker is a tracking service script (blocked by Ghostery).
	PartyTracker
	// PartyDual is an ad-and-tracking script (blocked by either).
	PartyDual
)

func (p Party) String() string {
	switch p {
	case PartyFirst:
		return "first-party"
	case PartyAd:
		return "ad"
	case PartyTracker:
		return "tracker"
	case PartyDual:
		return "ad+tracker"
	default:
		return fmt.Sprintf("Party(%d)", int8(p))
	}
}

// Paper band targets (§5.3): of the 1,392 corpus features, 689 are never
// used on the Alexa 10k and a further 416 are used on less than 1% of
// sites.
const (
	NeverUsedTarget    = 689
	UnderOnePctTarget  = 416
	dualBlockedShare   = 0.30 // share of a standard's blocked sites served by dual-party scripts
	staticSiteShare    = 0.03 // sites that use little to no JavaScript (Figure 8's zero mode)
	featureDecay       = 0.60 // geometric decay of feature popularity within a standard
	fragmentedTopShare = 0.70 // top-feature coverage for "fragmented" standards (e.g. HTML: Plugins)
)

// Profile is the calibrated ground-truth plan for one generated web.
type Profile struct {
	// SiteCount is the number of generated sites (the paper's n=10,000).
	SiteCount int
	// FeatureSites[featureID] is the target number of measured sites
	// using the feature.
	FeatureSites []int
	// stdSites[abbrev] lists the site indices using the standard.
	stdSites map[standards.Abbrev][]int
	// party[abbrev][siteIndex] is the (site, standard) attribution.
	party map[standards.Abbrev]map[int]Party
	// featureRuns[featureID] is the start offset of the feature's
	// contiguous run within its standard's site permutation.
	featureRuns []int
	reg         *webidl.Registry
}

// NewProfile calibrates a profile against the standards catalog.
// measurableSites lists the indices of sites that can be measured (failing
// domains excluded); totalSites is the full ranking size, which is the
// denominator the paper's Table 2 counts scale against.
func NewProfile(reg *webidl.Registry, measurableSites []int, totalSites int, seed int64) *Profile {
	rng := rand.New(rand.NewSource(seed))
	n := len(measurableSites)
	p := &Profile{
		SiteCount:    totalSites,
		FeatureSites: make([]int, len(reg.Features)),
		featureRuns:  make([]int, len(reg.Features)),
		stdSites:     make(map[standards.Abbrev][]int),
		party:        make(map[standards.Abbrev]map[int]Party),
		reg:          reg,
	}

	// Figure 8 shows a second mode around zero: a small but measurable
	// subset of sites uses little to no JavaScript. Carve those off
	// before assignment so no standard lands on them.
	static := int(float64(n) * staticSiteShare)
	scriptable := append([]int(nil), measurableSites...)
	rng.Shuffle(len(scriptable), func(i, j int) { scriptable[i], scriptable[j] = scriptable[j], scriptable[i] })
	scriptable = scriptable[static:]
	n = len(scriptable)

	// Stage 1: per-standard site counts scaled from the paper's Table 2.
	stdTarget := make(map[standards.Abbrev]int)
	for _, std := range standards.Catalog() {
		if std.Sites == 0 {
			continue
		}
		t := int(math.Round(float64(std.Sites) * float64(totalSites) / 10000.0))
		if t < 1 {
			t = 1
		}
		if t > n {
			t = n
		}
		stdTarget[std.Abbrev] = t
	}

	// Stage 2: per-feature counts with geometric within-standard decay,
	// restricted to measurable features.
	for _, std := range standards.Catalog() {
		c0 := stdTarget[std.Abbrev]
		fs := reg.OfStandard(std.Abbrev)
		if c0 == 0 || len(fs) == 0 {
			continue
		}
		top := c0
		if std.Fragmented && c0 >= 4 {
			top = int(math.Round(float64(c0) * fragmentedTopShare))
		}
		decay := float64(top)
		for _, f := range fs {
			if !webapi.Measurable(f) {
				continue
			}
			if f.Rank == 0 {
				p.FeatureSites[f.ID] = top
				continue
			}
			decay *= featureDecay
			p.FeatureSites[f.ID] = int(decay)
		}
	}

	// Stage 3: band repair — pin the never-used and <1% counts to the
	// paper's targets.
	p.repairBands(stdTarget, rng)

	// Stage 4: site assignment. Each standard gets a deterministic
	// permutation of the measurable sites; its first c0 entries form the
	// standard's site set. Features occupy contiguous runs within the
	// set, so the union of feature sites equals the set.
	for _, std := range standards.Catalog() {
		c0 := stdTarget[std.Abbrev]
		if c0 == 0 {
			continue
		}
		perm := sitePermutation(scriptable, std, rng)
		set := perm[:c0]
		p.stdSites[std.Abbrev] = set

		// Blocked partition.
		blocked := int(math.Round(float64(c0) * std.BlockRate))
		parties := make(map[int]Party, c0)
		for i, site := range set {
			parties[site] = PartyFirst
			if i >= blocked {
				continue
			}
			// Within the blocked prefix: dual, tracker-only, or
			// ad-only per the standard's tracker affinity.
			frac := float64(i) / math.Max(1, float64(blocked))
			tr := float64(std.Tracker)
			switch {
			case frac < dualBlockedShare:
				parties[site] = PartyDual
			case frac < dualBlockedShare+(1-dualBlockedShare)*tr:
				parties[site] = PartyTracker
			default:
				parties[site] = PartyAd
			}
		}
		p.party[std.Abbrev] = parties

		// Feature run offsets: rank-0 starts at 0 (covering the whole
		// set, except fragmented standards); deeper ranks start at
		// stable pseudo-random offsets so their blocked-site overlap
		// tracks the standard's block rate in expectation.
		for _, f := range p.reg.OfStandard(std.Abbrev) {
			if p.FeatureSites[f.ID] == 0 {
				continue
			}
			if f.Rank == 0 {
				p.featureRuns[f.ID] = 0
			} else {
				p.featureRuns[f.ID] = rng.Intn(c0)
			}
		}
		// Coverage guarantee for fragmented standards: the rank-1 run
		// starts where the top feature's run ends.
		if std.Fragmented {
			fs := p.reg.OfStandard(std.Abbrev)
			if len(fs) > 1 && p.FeatureSites[fs[0].ID] < c0 {
				need := c0 - p.FeatureSites[fs[0].ID]
				if p.FeatureSites[fs[1].ID] < need {
					p.FeatureSites[fs[1].ID] = need
				}
				p.featureRuns[fs[1].ID] = p.FeatureSites[fs[0].ID]
			}
		}
	}
	return p
}

// repairBands adjusts per-feature counts so that exactly NeverUsedTarget
// features have zero sites and, best-effort, UnderOnePctTarget features sit
// strictly under 1% of sites.
func (p *Profile) repairBands(stdTarget map[standards.Abbrev]int, rng *rand.Rand) {
	onePct := p.SiteCount / 100
	if onePct < 2 {
		onePct = 2
	}

	type candidate struct {
		id    int
		count int
	}
	zeros := 0
	var nonzero []candidate
	for id, c := range p.FeatureSites {
		if c == 0 {
			zeros++
		} else {
			nonzero = append(nonzero, candidate{id, c})
		}
	}
	sort.Slice(nonzero, func(i, j int) bool {
		if nonzero[i].count != nonzero[j].count {
			return nonzero[i].count < nonzero[j].count
		}
		return nonzero[i].id < nonzero[j].id
	})

	// Too few zeros: zero out the least-used non-top features.
	for i := 0; zeros < NeverUsedTarget && i < len(nonzero); i++ {
		f := p.reg.Features[nonzero[i].id]
		if f.Rank == 0 {
			continue // never zero a standard's top feature
		}
		p.FeatureSites[f.ID] = 0
		nonzero[i].count = 0
		zeros++
	}
	// Too many zeros: revive measurable features of used standards with
	// a single site.
	for _, f := range p.reg.Features {
		if zeros <= NeverUsedTarget {
			break
		}
		if p.FeatureSites[f.ID] != 0 || !webapi.Measurable(f) {
			continue
		}
		if stdTarget[f.Standard] == 0 {
			continue
		}
		p.FeatureSites[f.ID] = 1
		zeros--
	}

	// Second band: count features in [1, onePct) and nudge across the
	// boundary where possible.
	var under, over []int // feature IDs
	for id, c := range p.FeatureSites {
		switch {
		case c == 0:
		case c < onePct:
			under = append(under, id)
		default:
			over = append(over, id)
		}
	}
	switch {
	case len(under) > UnderOnePctTarget:
		// Promote just-under features to the boundary, richest
		// standards first so the promoted count stays within the
		// standard's site set.
		excess := len(under) - UnderOnePctTarget
		sort.Slice(under, func(i, j int) bool {
			ti := stdTarget[p.reg.Features[under[i]].Standard]
			tj := stdTarget[p.reg.Features[under[j]].Standard]
			if ti != tj {
				return ti > tj
			}
			return under[i] < under[j]
		})
		for _, id := range under {
			if excess == 0 {
				break
			}
			if stdTarget[p.reg.Features[id].Standard] >= onePct {
				p.FeatureSites[id] = onePct
				excess--
			}
		}
	case len(under) < UnderOnePctTarget:
		// Demote the smallest over-boundary non-top features.
		need := UnderOnePctTarget - len(under)
		sort.Slice(over, func(i, j int) bool {
			if p.FeatureSites[over[i]] != p.FeatureSites[over[j]] {
				return p.FeatureSites[over[i]] < p.FeatureSites[over[j]]
			}
			return over[i] < over[j]
		})
		for _, id := range over {
			if need == 0 {
				break
			}
			if p.reg.Features[id].Rank == 0 {
				continue
			}
			p.FeatureSites[id] = onePct - 1
			need--
		}
	}
	_ = rng
}

// sitePermutation yields the standard's deterministic site ordering. Most
// standards use a plain shuffle; a few are biased toward popular (or
// unpopular) sites to reproduce Figure 5's off-diagonal points.
func sitePermutation(sites []int, std standards.Standard, rng *rand.Rand) []int {
	perm := append([]int(nil), sites...)
	rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	switch std.Abbrev {
	case "DOM4", "DOM-PS", "H-HI", "TC":
		// Figure 5 calls these out as more popular on frequently
		// visited sites: bias the permutation head toward low ranks.
		sort.SliceStable(perm, func(i, j int) bool {
			return headScore(perm[i], rng) < headScore(perm[j], rng)
		})
	}
	return perm
}

// headScore orders sites by rank with jitter, for head-biased permutations.
func headScore(siteIndex int, rng *rand.Rand) float64 {
	return float64(siteIndex) * (0.5 + rng.Float64())
}

// SitesUsing returns the site indices assigned to the standard.
func (p *Profile) SitesUsing(a standards.Abbrev) []int { return p.stdSites[a] }

// PartyOf returns the attribution for a (standard, site) pair.
func (p *Profile) PartyOf(a standards.Abbrev, site int) (Party, bool) {
	pa, ok := p.party[a][site]
	return pa, ok
}

// FeatureOnSite reports whether the feature's run covers the given position
// within its standard's site set.
func (p *Profile) featureCoversPosition(f *webidl.Feature, pos, setSize int) bool {
	c := p.FeatureSites[f.ID]
	if c == 0 {
		return false
	}
	if c >= setSize {
		return true
	}
	start := p.featureRuns[f.ID] % setSize
	end := (start + c) % setSize
	if start < end {
		return pos >= start && pos < end
	}
	return pos >= start || pos < end
}

// Assignments returns, for every site index in [0, totalSites), the
// (feature, party) instances the site must exhibit. Failing sites (which are
// not in the measurable list) get empty assignment lists.
func (p *Profile) Assignments(totalSites int) [][]Assignment {
	out := make([][]Assignment, totalSites)
	// Map site index → position per standard.
	for _, std := range standards.Catalog() {
		set := p.stdSites[std.Abbrev]
		if len(set) == 0 {
			continue
		}
		for pos, site := range set {
			party := p.party[std.Abbrev][site]
			for _, f := range p.reg.OfStandard(std.Abbrev) {
				if p.featureCoversPosition(f, pos, len(set)) {
					out[site] = append(out[site], Assignment{Feature: f, Party: party})
				}
			}
		}
	}
	return out
}

// Assignment is one (feature, party) obligation for a site.
type Assignment struct {
	Feature *webidl.Feature
	Party   Party
}

// NeverUsed counts profile features with zero target sites.
func (p *Profile) NeverUsed() int {
	n := 0
	for _, c := range p.FeatureSites {
		if c == 0 {
			n++
		}
	}
	return n
}

// UnderOnePct counts used features under 1% of sites.
func (p *Profile) UnderOnePct() int {
	onePct := p.SiteCount / 100
	if onePct < 2 {
		onePct = 2
	}
	n := 0
	for _, c := range p.FeatureSites {
		if c > 0 && c < onePct {
			n++
		}
	}
	return n
}
