package synthweb

import (
	"fmt"
	"math"
	"math/rand"
	"net/url"
	"strings"
	"sync"

	"repro/internal/alexa"
	"repro/internal/standards"
	"repro/internal/webidl"
)

// Config parameterizes web generation.
type Config struct {
	// Sites is the number of ranked sites to generate (10,000 at paper
	// scale).
	Sites int
	// Seed drives all randomness; identical configs yield identical
	// webs.
	Seed int64
	// FailureRate is the fraction of domains that cannot be measured
	// (unresponsive or carrying script syntax errors). The paper lost
	// 267 of 10,000 domains (§4.3.3).
	FailureRate float64
}

// DefaultFailureRate matches the paper's 267/10,000.
const DefaultFailureRate = 0.0267

// FailureMode says why a site cannot be measured.
type FailureMode int

const (
	// FailNone marks measurable sites.
	FailNone FailureMode = iota
	// FailUnresponsive marks domains that never answer.
	FailUnresponsive
	// FailScriptError marks domains whose JavaScript carries syntax
	// errors that prevent execution (paper §4.3.3).
	FailScriptError
)

// Site is one generated website.
type Site struct {
	// Index is the dense site index (rank - 1).
	Index int
	// Rank is the Alexa rank.
	Rank int
	// Domain is the registrable domain.
	Domain string
	// Failure is the site's failure mode, if any.
	Failure FailureMode
}

// Third-party pool sizes.
const (
	adDomainCount      = 30
	trackerDomainCount = 30
	dualDomainCount    = 10
)

// Web is a fully generated synthetic web.
type Web struct {
	Cfg      Config
	Ranking  *alexa.Ranking
	Registry *webidl.Registry
	Profile  *Profile
	Sites    []*Site

	// AdDomains, TrackerDomains and DualDomains are the third-party
	// service domains; dual domains appear in both blocking lists.
	AdDomains      []string
	TrackerDomains []string
	DualDomains    []string

	// FilterListText is the synthetic EasyList consumed by the ABP
	// engine; TrackerLibText is the synthetic Ghostery library.
	FilterListText string
	TrackerLibText string

	assign   [][]Assignment
	byDomain map[string]*Site

	planMu    sync.Mutex
	planCache map[int]*sitePlan
}

// Generate builds the synthetic web for a config.
func Generate(reg *webidl.Registry, cfg Config) (*Web, error) {
	if cfg.Sites <= 0 {
		return nil, fmt.Errorf("synthweb: non-positive site count %d", cfg.Sites)
	}
	if cfg.FailureRate == 0 {
		cfg.FailureRate = DefaultFailureRate
	}
	if cfg.FailureRate < 0 || cfg.FailureRate >= 1 {
		return nil, fmt.Errorf("synthweb: failure rate %v outside [0,1)", cfg.FailureRate)
	}

	w := &Web{
		Cfg:       cfg,
		Ranking:   alexa.Generate(cfg.Sites, cfg.Seed),
		Registry:  reg,
		byDomain:  make(map[string]*Site, cfg.Sites),
		planCache: make(map[int]*sitePlan),
	}

	for i := 0; i < adDomainCount; i++ {
		w.AdDomains = append(w.AdDomains, fmt.Sprintf("adnet-%02d.example", i))
	}
	for i := 0; i < trackerDomainCount; i++ {
		w.TrackerDomains = append(w.TrackerDomains, fmt.Sprintf("trk-%02d.example", i))
	}
	for i := 0; i < dualDomainCount; i++ {
		w.DualDomains = append(w.DualDomains, fmt.Sprintf("adtrk-%02d.example", i))
	}

	// Sites and failures.
	rng := rand.New(rand.NewSource(cfg.Seed + 101))
	w.Sites = make([]*Site, cfg.Sites)
	for i := range w.Sites {
		w.Sites[i] = &Site{Index: i, Rank: i + 1, Domain: w.Ranking.Sites[i].Domain}
		w.byDomain[w.Sites[i].Domain] = w.Sites[i]
	}
	failCount := int(math.Round(cfg.FailureRate * float64(cfg.Sites)))
	failPerm := rng.Perm(cfg.Sites)
	for i := 0; i < failCount && i < len(failPerm); i++ {
		s := w.Sites[failPerm[i]]
		if i%2 == 0 {
			s.Failure = FailUnresponsive
		} else {
			s.Failure = FailScriptError
		}
	}

	// Profile over the measurable sites.
	var measurable []int
	for _, s := range w.Sites {
		if s.Failure == FailNone {
			measurable = append(measurable, s.Index)
		}
	}
	w.Profile = NewProfile(reg, measurable, cfg.Sites, cfg.Seed+202)
	w.assign = w.Profile.Assignments(cfg.Sites)

	w.FilterListText = w.buildFilterList()
	w.TrackerLibText = w.buildTrackerLib()
	return w, nil
}

// buildFilterList emits the synthetic EasyList: domain rules for every ad
// and dual domain, a few path rules, and element-hiding rules.
func (w *Web) buildFilterList() string {
	var b strings.Builder
	b.WriteString("[Adblock Plus 2.0]\n")
	b.WriteString("! Synthetic EasyList for the generated web\n")
	for _, d := range w.AdDomains {
		fmt.Fprintf(&b, "||%s^$third-party\n", d)
	}
	for _, d := range w.DualDomains {
		fmt.Fprintf(&b, "||%s^$third-party\n", d)
	}
	b.WriteString("/ads/banner*\n")
	b.WriteString("/adserve/^$script\n")
	b.WriteString("##.ad-banner\n")
	b.WriteString("##.sponsored\n")
	return b.String()
}

// buildTrackerLib emits the synthetic Ghostery library covering tracker and
// dual domains.
func (w *Web) buildTrackerLib() string {
	cats := []TrackerCategoryName{"site-analytics", "beacon", "fingerprinting", "advertising"}
	var b strings.Builder
	b.WriteString("# Synthetic tracker library\n")
	for i, d := range w.TrackerDomains {
		fmt.Fprintf(&b, "Tracker%02d|%s|%s\n", i, cats[i%len(cats)], d)
	}
	for i, d := range w.DualDomains {
		fmt.Fprintf(&b, "AdTracker%02d|advertising|%s\n", i, d)
	}
	return b.String()
}

// TrackerCategoryName mirrors blocking.TrackerCategory without importing the
// package (the web only emits text).
type TrackerCategoryName string

// SiteByDomain resolves a registrable domain (or www/cdn subdomain) to its
// site.
func (w *Web) SiteByDomain(domain string) (*Site, bool) {
	domain = strings.ToLower(domain)
	if s, ok := w.byDomain[domain]; ok {
		return s, true
	}
	if i := strings.IndexByte(domain, '.'); i >= 0 {
		if s, ok := w.byDomain[domain[i+1:]]; ok {
			return s, true
		}
	}
	return nil, false
}

// AssignmentsOf returns the (feature, party) obligations of a site.
func (w *Web) AssignmentsOf(site *Site) []Assignment { return w.assign[site.Index] }

// GroundTruthSites returns how many measurable sites the profile assigns to
// a standard (for validation against measurements; the analysis pipeline
// does not use it).
func (w *Web) GroundTruthSites(a standards.Abbrev) int {
	return len(w.Profile.SitesUsing(a))
}

// GroundTruthFeatureSites returns the profile's target site count for a
// feature.
func (w *Web) GroundTruthFeatureSites(f *webidl.Feature) int {
	return w.Profile.FeatureSites[f.ID]
}

// Resource is one servable resource.
type Resource struct {
	// ContentType is "text/html" or "application/javascript".
	ContentType string
	// Body is the resource content.
	Body string
}

// ErrNotFound reports a URL no generated resource answers.
type ErrNotFound struct{ URL string }

func (e *ErrNotFound) Error() string { return "synthweb: no resource at " + e.URL }

// ErrUnresponsive reports a domain that never answers (failure injection).
type ErrUnresponsive struct{ Domain string }

func (e *ErrUnresponsive) Error() string { return "synthweb: connection timeout to " + e.Domain }

// Resource resolves a URL to its generated content. Page HTML and scripts
// are materialized lazily and deterministically: the same URL always yields
// the same bytes for a given web.
func (w *Web) Resource(rawURL string) (Resource, error) {
	u, err := url.Parse(rawURL)
	if err != nil {
		return Resource{}, fmt.Errorf("synthweb: bad url %q: %w", rawURL, err)
	}
	host := strings.ToLower(u.Hostname())
	path := u.Path
	if path == "" {
		path = "/"
	}

	// Third-party script hosts.
	if party, ok := w.partyOfHost(host); ok {
		return w.thirdPartyResource(host, party, path)
	}

	site, ok := w.SiteByDomain(host)
	if !ok {
		return Resource{}, &ErrNotFound{URL: rawURL}
	}
	if site.Failure == FailUnresponsive {
		return Resource{}, &ErrUnresponsive{Domain: site.Domain}
	}
	if strings.HasPrefix(path, "/account") {
		return w.closedResource(site, path, u.RawQuery)
	}
	plan := w.planOf(site)

	if strings.HasPrefix(path, "/static/") {
		key := strings.TrimSuffix(strings.TrimPrefix(path, "/static/"), ".js")
		page, ok := plan.pages[key]
		if !ok {
			return Resource{}, &ErrNotFound{URL: rawURL}
		}
		body := page.firstPartySource
		if site.Failure == FailScriptError && page.key == "home" {
			body = corruptScript(body)
		}
		return Resource{ContentType: "application/javascript", Body: body}, nil
	}

	page, ok := plan.byPath[path]
	if !ok {
		return Resource{}, &ErrNotFound{URL: rawURL}
	}
	return Resource{ContentType: "text/html", Body: page.html}, nil
}

// partyOfHost classifies third-party hosts.
func (w *Web) partyOfHost(host string) (Party, bool) {
	switch {
	case strings.HasPrefix(host, "adnet-") && strings.HasSuffix(host, ".example"):
		return PartyAd, true
	case strings.HasPrefix(host, "trk-") && strings.HasSuffix(host, ".example"):
		return PartyTracker, true
	case strings.HasPrefix(host, "adtrk-") && strings.HasSuffix(host, ".example"):
		return PartyDual, true
	}
	return PartyFirst, false
}

// thirdPartyResource serves "/tags/<siteDomain>/<pageKey>.js".
func (w *Web) thirdPartyResource(host string, party Party, path string) (Resource, error) {
	parts := strings.Split(strings.TrimPrefix(path, "/tags/"), "/")
	if len(parts) != 2 || !strings.HasSuffix(parts[1], ".js") {
		return Resource{}, &ErrNotFound{URL: "http://" + host + path}
	}
	site, ok := w.SiteByDomain(parts[0])
	if !ok {
		return Resource{}, &ErrNotFound{URL: "http://" + host + path}
	}
	key := strings.TrimSuffix(parts[1], ".js")
	plan := w.planOf(site)
	page, ok := plan.pages[key]
	if !ok {
		return Resource{}, &ErrNotFound{URL: "http://" + host + path}
	}
	src, ok := page.thirdPartySource[party]
	if !ok {
		return Resource{}, &ErrNotFound{URL: "http://" + host + path}
	}
	return Resource{ContentType: "application/javascript", Body: src}, nil
}

// corruptScript introduces the syntax error that makes FailScriptError
// domains unmeasurable.
func corruptScript(src string) string {
	return "invoke Document.createElement 1 % syntax error\n" + src
}

// planOf returns the site's materialization plan, building and caching it on
// first use. The cache is bounded: crawlers process a site's visits
// consecutively, so locality is high.
func (w *Web) planOf(site *Site) *sitePlan {
	w.planMu.Lock()
	defer w.planMu.Unlock()
	if p, ok := w.planCache[site.Index]; ok {
		return p
	}
	if len(w.planCache) > 512 {
		for k := range w.planCache {
			delete(w.planCache, k)
			if len(w.planCache) <= 256 {
				break
			}
		}
	}
	p := w.buildPlan(site)
	w.planCache[site.Index] = p
	return p
}
