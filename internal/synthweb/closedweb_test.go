package synthweb

import (
	"strings"
	"testing"

	"repro/internal/html"
	"repro/internal/webscript"
)

func memberSite(t testing.TB, w *Web) *Site {
	t.Helper()
	for _, s := range w.Sites {
		if w.HasMembersArea(s) {
			return s
		}
	}
	t.Fatal("no member site generated")
	return nil
}

func TestMembersAreaShare(t *testing.T) {
	w := testWebOnce(t)
	n := 0
	for _, s := range w.Sites {
		if w.HasMembersArea(s) {
			n++
		}
	}
	share := float64(n) / float64(len(w.Sites))
	if share < 0.15 || share > 0.35 {
		t.Errorf("members-area share %.2f, want ~%.2f", share, closedWebShare)
	}
}

func TestLoginWallWithoutCredentials(t *testing.T) {
	w := testWebOnce(t)
	site := memberSite(t, w)
	res, err := w.Resource("http://" + site.Domain + "/account")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Body, "Please sign in") {
		t.Errorf("unauthenticated /account is not the login wall:\n%s", res.Body)
	}
	doc, err := html.Parse(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Scripts()) != 0 {
		t.Error("login wall carries scripts; open-web survey would observe the closed web")
	}
}

func TestMembersPageWithCredentials(t *testing.T) {
	w := testWebOnce(t)
	site := memberSite(t, w)
	res, err := w.Resource("http://" + site.Domain + "/account?auth=" + SessionToken)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(res.Body, "Please sign in") {
		t.Fatal("credentials did not unlock the members area")
	}
	doc, err := html.Parse(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	scripts := doc.Scripts()
	if len(scripts) == 0 {
		t.Fatal("members page has no scripts")
	}
	js, err := w.Resource("http://" + site.Domain + scripts[0].Src)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := webscript.Parse(js.Body)
	if err != nil {
		t.Fatalf("member script does not parse: %v", err)
	}
	if len(parsed.Immediate)+len(parsed.Handlers) == 0 {
		t.Fatal("member script is empty")
	}
	// The script must reference closed-web-pool interfaces.
	foundPool := false
	for _, std := range ClosedWebStandards() {
		for _, f := range w.Registry.OfStandard(std) {
			if strings.Contains(js.Body, f.Interface+"."+f.Member) {
				foundPool = true
			}
		}
	}
	if !foundPool {
		t.Errorf("member script uses no closed-web standards:\n%s", js.Body)
	}
}

func TestMemberScriptRequiresAuth(t *testing.T) {
	w := testWebOnce(t)
	site := memberSite(t, w)
	if _, err := w.Resource("http://" + site.Domain + "/account/static/account.js"); err == nil {
		t.Fatal("member script served without credentials")
	}
}

func TestNonMemberSiteHasNoAccount(t *testing.T) {
	w := testWebOnce(t)
	for _, s := range w.Sites {
		if s.Failure != FailNone || w.HasMembersArea(s) {
			continue
		}
		if _, err := w.Resource("http://" + s.Domain + "/account?auth=" + SessionToken); err == nil {
			t.Fatal("non-member site served a members area")
		}
		return
	}
}

func TestHomePageAdvertisesLogin(t *testing.T) {
	w := testWebOnce(t)
	site := memberSite(t, w)
	res, err := w.Resource("http://" + site.Domain + "/")
	if err != nil {
		t.Fatal(err)
	}
	doc, err := html.Parse(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	login := doc.GetElementByID("login")
	if login == nil || login.AttrOr("href", "") != "/account" {
		t.Error("member site home page lacks the login link")
	}
}

func TestClosedWebPoolNeverUsedOpenly(t *testing.T) {
	w := testWebOnce(t)
	// The closed-web pool consists of standards the open-web profile
	// never assigns; otherwise the paper's never-used band would leak.
	for _, std := range ClosedWebStandards() {
		if got := w.GroundTruthSites(std); got != 0 {
			t.Errorf("closed-web standard %s assigned to %d open-web sites", std, got)
		}
	}
}
