package synthweb

import (
	"math"
	"strings"
	"testing"

	"repro/internal/blocking"
	"repro/internal/html"
	"repro/internal/standards"
	"repro/internal/webapi"
	"repro/internal/webidl"
	"repro/internal/webscript"
)

var (
	testReg *webidl.Registry
	testWeb *Web
)

func testWebOnce(t testing.TB) *Web {
	t.Helper()
	if testWeb == nil {
		reg, err := webidl.Generate(1)
		if err != nil {
			t.Fatal(err)
		}
		testReg = reg
		w, err := Generate(reg, Config{Sites: 1000, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		testWeb = w
	}
	return testWeb
}

func TestGenerateBasics(t *testing.T) {
	w := testWebOnce(t)
	if len(w.Sites) != 1000 {
		t.Fatalf("sites = %d, want 1000", len(w.Sites))
	}
	failures := 0
	for _, s := range w.Sites {
		if s.Failure != FailNone {
			failures++
		}
	}
	want := int(math.Round(DefaultFailureRate * 1000))
	if failures != want {
		t.Errorf("failures = %d, want %d", failures, want)
	}
}

func TestProfileBands(t *testing.T) {
	w := testWebOnce(t)
	if got := w.Profile.NeverUsed(); got != NeverUsedTarget {
		t.Errorf("never-used features = %d, want %d (paper §5.3: 689)", got, NeverUsedTarget)
	}
	got := w.Profile.UnderOnePct()
	if d := got - UnderOnePctTarget; d < -25 || d > 25 {
		t.Errorf("under-1%% features = %d, want ~%d (paper §5.3: 416)", got, UnderOnePctTarget)
	}
}

func TestProfileStandardTargets(t *testing.T) {
	w := testWebOnce(t)
	for _, std := range standards.Catalog() {
		got := w.GroundTruthSites(std.Abbrev)
		if std.Sites == 0 {
			if got != 0 {
				t.Errorf("standard %s: %d sites assigned, want 0", std.Abbrev, got)
			}
			continue
		}
		want := int(math.Round(float64(std.Sites) / 10.0)) // scaled 10000 → 1000
		if want < 1 {
			want = 1
		}
		if got != want {
			t.Errorf("standard %s: %d sites assigned, want %d", std.Abbrev, got, want)
		}
	}
}

func TestProfilePartySplitMatchesBlockRate(t *testing.T) {
	w := testWebOnce(t)
	for _, std := range standards.Catalog() {
		set := w.Profile.SitesUsing(std.Abbrev)
		if len(set) < 20 {
			continue
		}
		blocked := 0
		for _, site := range set {
			p, ok := w.Profile.PartyOf(std.Abbrev, site)
			if !ok {
				t.Fatalf("standard %s: site %d has no party", std.Abbrev, site)
			}
			if p != PartyFirst {
				blocked++
			}
		}
		got := float64(blocked) / float64(len(set))
		if math.Abs(got-std.BlockRate) > 0.05 {
			t.Errorf("standard %s: blocked share %.3f, want %.3f", std.Abbrev, got, std.BlockRate)
		}
	}
}

func TestAssignmentsConsistent(t *testing.T) {
	w := testWebOnce(t)
	// Per-feature assignment totals must equal profile targets, and a
	// standard's assigned sites must equal its site set.
	perFeature := make(map[int]int)
	perStd := make(map[standards.Abbrev]map[int]bool)
	for _, site := range w.Sites {
		for _, a := range w.AssignmentsOf(site) {
			perFeature[a.Feature.ID]++
			if perStd[a.Feature.Standard] == nil {
				perStd[a.Feature.Standard] = map[int]bool{}
			}
			perStd[a.Feature.Standard][site.Index] = true
		}
	}
	for _, f := range w.Registry.Features {
		if got, want := perFeature[f.ID], w.GroundTruthFeatureSites(f); got != want {
			t.Errorf("feature %s: assigned to %d sites, want %d", f.Name(), got, want)
		}
	}
	for _, std := range standards.Catalog() {
		if got, want := len(perStd[std.Abbrev]), w.GroundTruthSites(std.Abbrev); got != want {
			t.Errorf("standard %s: union of feature sites = %d, want %d", std.Abbrev, got, want)
		}
	}
}

func TestAssignmentsOnlyMeasurable(t *testing.T) {
	w := testWebOnce(t)
	for _, site := range w.Sites[:100] {
		for _, a := range w.AssignmentsOf(site) {
			if !webapi.Measurable(a.Feature) {
				t.Fatalf("unmeasurable feature %s assigned to %s", a.Feature.Name(), site.Domain)
			}
		}
	}
}

func TestFailingSitesGetNoAssignments(t *testing.T) {
	w := testWebOnce(t)
	for _, site := range w.Sites {
		if site.Failure != FailNone && len(w.AssignmentsOf(site)) != 0 {
			t.Fatalf("failing site %s has %d assignments", site.Domain, len(w.AssignmentsOf(site)))
		}
	}
}

func TestResourceHomePage(t *testing.T) {
	w := testWebOnce(t)
	var site *Site
	for _, s := range w.Sites {
		if s.Failure == FailNone {
			site = s
			break
		}
	}
	res, err := w.Resource("http://" + site.Domain + "/")
	if err != nil {
		t.Fatal(err)
	}
	if res.ContentType != "text/html" {
		t.Errorf("content type = %s", res.ContentType)
	}
	doc, err := html.Parse(res.Body)
	if err != nil {
		t.Fatalf("home page does not parse: %v", err)
	}
	if len(doc.Links()) == 0 {
		t.Error("home page has no links")
	}
	if doc.GetElementByID("act-0") == nil || doc.GetElementByID("q") == nil {
		t.Error("home page missing interactive elements")
	}
	scripts := doc.Scripts()
	if len(scripts) == 0 {
		t.Fatal("home page has no scripts")
	}
	// First-party script must exist and parse as WebScript.
	res2, err := w.Resource("http://" + site.Domain + "/static/home.js")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := webscript.Parse(res2.Body); err != nil {
		t.Fatalf("home script does not parse: %v\n%s", err, res2.Body)
	}
}

func TestResourceDeterministic(t *testing.T) {
	w := testWebOnce(t)
	site := w.Sites[3]
	a, err := w.Resource("http://" + site.Domain + "/")
	if err != nil {
		t.Fatal(err)
	}
	// Clear the plan cache to force a rebuild.
	w.planMu.Lock()
	w.planCache = map[int]*sitePlan{}
	w.planMu.Unlock()
	b, err := w.Resource("http://" + site.Domain + "/")
	if err != nil {
		t.Fatal(err)
	}
	if a.Body != b.Body {
		t.Fatal("resource not deterministic across plan rebuilds")
	}
}

func TestUnresponsiveSites(t *testing.T) {
	w := testWebOnce(t)
	for _, s := range w.Sites {
		if s.Failure != FailUnresponsive {
			continue
		}
		_, err := w.Resource("http://" + s.Domain + "/")
		if _, ok := err.(*ErrUnresponsive); !ok {
			t.Fatalf("unresponsive site returned %v", err)
		}
		break
	}
}

func TestScriptErrorSites(t *testing.T) {
	w := testWebOnce(t)
	for _, s := range w.Sites {
		if s.Failure != FailScriptError {
			continue
		}
		res, err := w.Resource("http://" + s.Domain + "/static/home.js")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := webscript.Parse(res.Body); err == nil {
			t.Fatal("script-error site serves a valid script")
		}
		break
	}
}

func TestThirdPartyScriptsServedAndBlocked(t *testing.T) {
	w := testWebOnce(t)
	// Find a site with an ad-attributed standard.
	var adURL string
	var pageHost string
searching:
	for _, site := range w.Sites {
		if site.Failure != FailNone {
			continue
		}
		res, err := w.Resource("http://" + site.Domain + "/")
		if err != nil {
			t.Fatal(err)
		}
		doc, err := html.Parse(res.Body)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range doc.Scripts() {
			if strings.Contains(s.Src, "adnet-") {
				adURL = s.Src
				pageHost = site.Domain
				break searching
			}
		}
	}
	if adURL == "" {
		t.Fatal("no ad script found on any site")
	}
	res, err := w.Resource(adURL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := webscript.Parse(res.Body); err != nil {
		t.Fatalf("ad script does not parse: %v", err)
	}
	// The synthetic EasyList must block it.
	list, err := blocking.ParseList("easylist", w.FilterListText)
	if err != nil {
		t.Fatal(err)
	}
	eng := blocking.NewEngine(list)
	req := blocking.Request{URL: adURL, PageHost: pageHost, Type: blocking.ResourceScript}
	if !eng.ShouldBlock(req) {
		t.Errorf("filter list does not block ad script %s", adURL)
	}
}

func TestTrackerLibParses(t *testing.T) {
	w := testWebOnce(t)
	db, err := blocking.ParseTrackerDB(w.TrackerLibText)
	if err != nil {
		t.Fatal(err)
	}
	if db.Size() != trackerDomainCount+dualDomainCount {
		t.Errorf("tracker db size = %d, want %d", db.Size(), trackerDomainCount+dualDomainCount)
	}
	// Dual domains must be in both lists.
	list, err := blocking.ParseList("easylist", w.FilterListText)
	if err != nil {
		t.Fatal(err)
	}
	eng := blocking.NewEngine(list)
	dualURL := "http://" + w.DualDomains[0] + "/tags/x.example/home.js"
	req := blocking.Request{URL: dualURL, PageHost: "x.example", Type: blocking.ResourceScript}
	if !eng.ShouldBlock(req) {
		t.Error("ABP list does not block dual domain")
	}
	if !db.ShouldBlock(req) {
		t.Error("tracker DB does not block dual domain")
	}
}

func TestAllPagePathsServable(t *testing.T) {
	w := testWebOnce(t)
	var site *Site
	for _, s := range w.Sites {
		if s.Failure == FailNone {
			site = s
			break
		}
	}
	for _, path := range PagePaths() {
		res, err := w.Resource("http://" + site.Domain + path)
		if err != nil {
			t.Fatalf("path %s: %v", path, err)
		}
		if _, err := html.Parse(res.Body); err != nil {
			t.Fatalf("path %s HTML invalid: %v", path, err)
		}
	}
	if _, err := w.Resource("http://" + site.Domain + "/missing"); err == nil {
		t.Fatal("missing path should 404")
	}
}

func TestEveryAssignmentAppearsInScripts(t *testing.T) {
	w := testWebOnce(t)
	// For a sample of sites, every assigned feature must appear in some
	// script the site's pages serve (so the crawl can observe it).
	checked := 0
	for _, site := range w.Sites {
		if site.Failure != FailNone || checked >= 5 {
			continue
		}
		checked++
		want := map[string]bool{}
		for _, a := range w.AssignmentsOf(site) {
			want[a.Feature.Interface+"."+a.Feature.Member] = false
		}
		plan := w.planOf(site)
		for _, page := range plan.pages {
			sources := []string{page.firstPartySource}
			for _, s := range page.thirdPartySource {
				sources = append(sources, s)
			}
			for _, src := range sources {
				for ref := range want {
					if strings.Contains(src, ref) {
						want[ref] = true
					}
				}
			}
		}
		for ref, found := range want {
			if !found {
				t.Errorf("site %s: assigned feature %s appears in no script", site.Domain, ref)
			}
		}
	}
}

func TestPartyString(t *testing.T) {
	if PartyFirst.String() != "first-party" || PartyDual.String() != "ad+tracker" {
		t.Error("party strings wrong")
	}
	if !strings.Contains(Party(9).String(), "9") {
		t.Error("unknown party string wrong")
	}
}

func TestGenerateErrors(t *testing.T) {
	reg := testReg
	if _, err := Generate(reg, Config{Sites: 0, Seed: 1}); err == nil {
		t.Error("zero sites should fail")
	}
	if _, err := Generate(reg, Config{Sites: 10, Seed: 1, FailureRate: 1.5}); err == nil {
		t.Error("bad failure rate should fail")
	}
}
