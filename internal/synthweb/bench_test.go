package synthweb

import (
	"testing"

	"repro/internal/webidl"
)

func benchRegistry(b *testing.B) *webidl.Registry {
	b.Helper()
	if testReg == nil {
		reg, err := webidl.Generate(1)
		if err != nil {
			b.Fatal(err)
		}
		testReg = reg
	}
	return testReg
}

func BenchmarkGenerate1k(b *testing.B) {
	reg := benchRegistry(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(reg, Config{Sites: 1000, Seed: int64(i) + 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProfileCalibration(b *testing.B) {
	reg := benchRegistry(b)
	sites := make([]int, 1000)
	for i := range sites {
		sites[i] = i
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewProfile(reg, sites, 1000, int64(i)+1)
	}
}

func BenchmarkResourcePage(b *testing.B) {
	w := testWebOnce(b)
	var site *Site
	for _, s := range w.Sites {
		if s.Failure == FailNone {
			site = s
			break
		}
	}
	url := "http://" + site.Domain + "/"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Resource(url); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlanBuild(b *testing.B) {
	w := testWebOnce(b)
	var site *Site
	for _, s := range w.Sites {
		if s.Failure == FailNone {
			site = s
			break
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.planMu.Lock()
		delete(w.planCache, site.Index)
		w.planMu.Unlock()
		w.planOf(site)
	}
}
