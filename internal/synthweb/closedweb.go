package synthweb

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/standards"
	"repro/internal/webapi"
	"repro/internal/webscript"
)

// Closed-web support implements the paper's §7.3 future work: "The closed
// web (i.e. web content and functionality that are only available after
// logging in to a website) likely uses a broader set of features. With the
// correct credentials, the monkey testing approach could be used to
// evaluate those sites."
//
// A quarter of generated sites carry a members area under /account. Without
// credentials the server answers with a login-wall page (no scripts), so
// the open-web survey measures nothing there — exactly the paper's stated
// measurement boundary. With the session token appended (the crawler's
// WithCredentials mode), the members pages serve scripts exercising
// standards from the closed-web pool below, which the open-web survey never
// observes.

// closedWebShare is the fraction of sites with a members area.
const closedWebShare = 0.25

// SessionToken is the query credential that unlocks members areas
// ("?auth=<token>").
const SessionToken = "member"

// closedWebPool lists standards plausibly used only behind logins: media
// DRM, service workers, media recording — the standards that are never
// observed on the open web.
var closedWebPool = []standards.Abbrev{"EME", "SW", "MSR", "GIM", "PL", "SD"}

// HasMembersArea reports whether a site carries a closed members area.
func (w *Web) HasMembersArea(site *Site) bool {
	if site.Failure != FailNone {
		return false
	}
	return (uint32(site.Index)*2654435761)%100 < uint32(closedWebShare*100)
}

// ClosedWebStandards returns the closed-web standard pool (for analysis and
// examples).
func ClosedWebStandards() []standards.Abbrev {
	return append([]standards.Abbrev(nil), closedWebPool...)
}

// accountPaths are the members-area page paths.
var accountPaths = []string{"/account", "/account/p1", "/account/p2"}

// AccountPaths returns the members-area paths.
func AccountPaths() []string { return append([]string(nil), accountPaths...) }

// closedResource serves a members-area URL: the login wall without
// credentials, the members page with them.
func (w *Web) closedResource(site *Site, path, rawQuery string) (Resource, error) {
	if !w.HasMembersArea(site) {
		return Resource{}, &ErrNotFound{URL: "http://" + site.Domain + path}
	}
	authed := strings.Contains(rawQuery, "auth="+SessionToken)
	if strings.HasSuffix(path, ".js") {
		if !authed {
			return Resource{}, &ErrNotFound{URL: "http://" + site.Domain + path}
		}
		return Resource{
			ContentType: "application/javascript",
			Body:        w.memberScript(site, strings.TrimSuffix(strings.TrimPrefix(path, "/account/static/"), ".js")),
		}, nil
	}
	valid := false
	for _, p := range accountPaths {
		if p == path {
			valid = true
		}
	}
	if !valid {
		return Resource{}, &ErrNotFound{URL: "http://" + site.Domain + path}
	}
	if !authed {
		return Resource{ContentType: "text/html", Body: loginWallHTML(site)}, nil
	}
	return Resource{ContentType: "text/html", Body: w.memberPageHTML(site, path)}, nil
}

// loginWallHTML is the page unauthenticated visitors see: a form, no
// scripts, no features — the open-web crawl passes through without
// observations, as the paper's open-web scope dictates.
func loginWallHTML(site *Site) string {
	return fmt.Sprintf(`<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>%s — sign in</title></head>
<body>
<div id="content"><p>Please sign in to continue.</p>
<form><input id="user" type="text" name="user"><input id="pass" type="text" name="pass">
<button id="login-submit" data-action="login">Sign in</button></form>
<a href="/">back</a></div>
</body></html>`, site.Domain)
}

// memberPageHTML is the authenticated members page; its script URL carries
// the session token so subresource fetches stay authenticated.
func (w *Web) memberPageHTML(site *Site, path string) string {
	key := "account"
	if strings.HasPrefix(path, "/account/") {
		key = "account-" + strings.TrimPrefix(path, "/account/")
	}
	var links strings.Builder
	for _, p := range accountPaths {
		if p != path {
			fmt.Fprintf(&links, `<a href="%s?auth=%s">%s</a>`, p, SessionToken, p)
		}
	}
	return fmt.Sprintf(`<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>%s — members</title>
<script src="/account/static/%s.js?auth=%s"></script></head>
<body>
<nav>%s<a href="/">home</a></nav>
<div id="content"><p>member content</p>
<button id="act-0" data-action="play">Play</button>
<button id="act-1" data-action="record">Record</button>
<form><input id="q" type="text" name="q"></form></div>
</body></html>`, site.Domain, key, SessionToken, links.String())
}

// memberScript generates the members-area WebScript: invocations of
// closed-web-pool features, deterministic per (site, page).
func (w *Web) memberScript(site *Site, key string) string {
	rng := rand.New(rand.NewSource(w.Cfg.Seed ^ (int64(site.Index)+7)*7_368_787))
	s := &webscript.Script{}
	// 2-3 closed-web standards per site; one or two features each.
	nStd := 2 + int(uint32(site.Index)%2)
	for i := 0; i < nStd; i++ {
		std := closedWebPool[(site.Index+i)%len(closedWebPool)]
		fs := w.Registry.OfStandard(std)
		used := 0
		for _, f := range fs {
			if !webapi.Measurable(f) {
				continue
			}
			stmt := webscript.Invoke{Interface: f.Interface, Member: f.Member, Count: 1 + rng.Intn(4)}
			if rng.Float64() < 0.7 {
				s.Immediate = append(s.Immediate, stmt)
			} else {
				h := &webscript.Handler{Event: webscript.EventClick, Selector: "#act-0", Interval: 1}
				h.Body = append(h.Body, stmt)
				s.Handlers = append(s.Handlers, h)
			}
			used++
			if used >= 2 {
				break
			}
		}
	}
	if key != "account" {
		// Deeper member pages also navigate among themselves.
		h := &webscript.Handler{Event: webscript.EventClick, Selector: "#act-1", Interval: 1}
		h.Body = append(h.Body, webscript.Navigate{Path: "/account?auth=" + SessionToken})
		s.Handlers = append(s.Handlers, h)
	}
	return webscript.Format(s)
}
