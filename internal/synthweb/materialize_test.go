package synthweb

import (
	"strings"
	"testing"

	"repro/internal/webscript"
)

func TestPageKeysAndPaths(t *testing.T) {
	keys := pageKeys()
	if len(keys) != 19 { // home + 3 sections + 15 leaves
		t.Fatalf("page keys = %d, want 19", len(keys))
	}
	if pathOfKey("home") != "/" || pathOfKey("sec2") != "/sec2" || pathOfKey("sec3p4") != "/sec3/p4" {
		t.Fatal("pathOfKey mapping wrong")
	}
	paths := PagePaths()
	if len(paths) != 19 || paths[0] != "/" {
		t.Fatalf("PagePaths = %v", paths)
	}
}

func TestPlacementsCoverGroundTruthParties(t *testing.T) {
	w := testWebOnce(t)
	checked := 0
	for _, site := range w.Sites {
		if site.Failure != FailNone || checked >= 10 {
			continue
		}
		assigns := w.AssignmentsOf(site)
		if len(assigns) == 0 {
			continue
		}
		checked++
		plan := w.planOf(site)
		// Every party with assignments must have at least one script
		// on some page, and no script may exist for absent parties.
		partyHasAssign := map[Party]bool{}
		for _, a := range assigns {
			partyHasAssign[a.Party] = true
		}
		partyHasScript := map[Party]bool{PartyFirst: true} // nav handlers always exist
		for _, page := range plan.pages {
			for party, src := range page.thirdPartySource {
				if strings.TrimSpace(src) != "" {
					partyHasScript[party] = true
				}
			}
		}
		for party := range partyHasAssign {
			if !partyHasScript[party] {
				t.Errorf("site %s: party %s has assignments but no script", site.Domain, party)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no sites checked")
	}
}

func TestHomePageLoadGuaranteesFirstInstance(t *testing.T) {
	// Non-gated standards place their first instance as a home-page load
	// statement, so every assigned standard with a home placement is
	// observable on round one. Verify home scripts are non-trivial for
	// sites with assignments.
	w := testWebOnce(t)
	for _, site := range w.Sites[:20] {
		if site.Failure != FailNone || len(w.AssignmentsOf(site)) == 0 {
			continue
		}
		plan := w.planOf(site)
		src := plan.pages["home"].firstPartySource
		s, err := webscript.Parse(src)
		if err != nil {
			t.Fatalf("site %s home script: %v", site.Domain, err)
		}
		if len(s.Immediate)+len(s.Handlers) == 0 {
			t.Errorf("site %s: empty home script despite assignments", site.Domain)
		}
	}
}

func TestStatementCountsPositive(t *testing.T) {
	w := testWebOnce(t)
	var site *Site
	for _, s := range w.Sites {
		if s.Failure == FailNone && len(w.AssignmentsOf(s)) > 0 {
			site = s
			break
		}
	}
	plan := w.planOf(site)
	for key, page := range plan.pages {
		for _, src := range append([]string{page.firstPartySource}, valuesOf(page.thirdPartySource)...) {
			s, err := webscript.Parse(src)
			if err != nil {
				t.Fatalf("page %s script: %v", key, err)
			}
			for _, st := range s.Immediate {
				if inv, ok := st.(webscript.Invoke); ok && inv.Count < 1 {
					t.Fatalf("page %s: non-positive invoke count %d", key, inv.Count)
				}
			}
		}
	}
}

func valuesOf(m map[Party]string) []string {
	var out []string
	for _, v := range m {
		out = append(out, v)
	}
	return out
}

func TestLinkLabels(t *testing.T) {
	if linkLabel("/") != "home" {
		t.Errorf("linkLabel(/) = %q", linkLabel("/"))
	}
	if got := linkLabel("/sec1/p2"); got != "sec1 p2" {
		t.Errorf("linkLabel(/sec1/p2) = %q", got)
	}
	if got := linkLabel("http://partner-offers.example/deals"); !strings.Contains(got, "deals") {
		t.Errorf("external label = %q", got)
	}
}
