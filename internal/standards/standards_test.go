package standards

import (
	"testing"
)

func TestValidate(t *testing.T) {
	if err := Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCatalogOrderDeterministic(t *testing.T) {
	a := Catalog()
	b := Catalog()
	if len(a) != len(b) {
		t.Fatalf("catalog lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Abbrev != b[i].Abbrev {
			t.Fatalf("catalog order not deterministic at %d: %s vs %s", i, a[i].Abbrev, b[i].Abbrev)
		}
	}
	// Descending by site count.
	for i := 1; i < len(a); i++ {
		if a[i].Sites > a[i-1].Sites {
			t.Fatalf("catalog not sorted by sites at %d: %d > %d", i, a[i].Sites, a[i-1].Sites)
		}
	}
}

func TestCatalogIsCopy(t *testing.T) {
	a := Catalog()
	a[0].Sites = -1
	b := Catalog()
	if b[0].Sites == -1 {
		t.Fatal("Catalog returned a shared slice; mutation leaked")
	}
}

func TestByAbbrev(t *testing.T) {
	cases := []struct {
		abbrev Abbrev
		name   string
		sites  int
	}{
		{"AJAX", "XMLHttpRequest", 7957},
		{"H-C", "HTML: Canvas", 7061},
		{"V", "Vibration API", 1},
		{"E", "Encoding", 1},
		{"ALS", "Ambient Light Events", 14},
		{NonStandard, "Non-Standard", 8669},
	}
	for _, c := range cases {
		s, ok := ByAbbrev(c.abbrev)
		if !ok {
			t.Fatalf("ByAbbrev(%q) not found", c.abbrev)
		}
		if s.Name != c.name {
			t.Errorf("ByAbbrev(%q).Name = %q, want %q", c.abbrev, s.Name, c.name)
		}
		if s.Sites != c.sites {
			t.Errorf("ByAbbrev(%q).Sites = %d, want %d", c.abbrev, s.Sites, c.sites)
		}
	}
	if _, ok := ByAbbrev("NOPE"); ok {
		t.Fatal("ByAbbrev(NOPE) unexpectedly found")
	}
}

func TestMustByAbbrevPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustByAbbrev did not panic on unknown abbreviation")
		}
	}()
	MustByAbbrev("NOPE")
}

func TestPaperHeadlineNumbers(t *testing.T) {
	if got := TotalFeatures(); got != 1392 {
		t.Errorf("TotalFeatures = %d, want 1392", got)
	}
	if got := Count(); got != 75 {
		t.Errorf("Count = %d, want 75", got)
	}
	if got := len(NeverUsed()); got != 11 {
		t.Errorf("NeverUsed = %d standards, want 11", got)
	}
	if got := len(UsedAtMost(100)); got != 28 {
		t.Errorf("UsedAtMost(100) = %d standards, want 28", got)
	}
	if got := MappedCVEs(); got != 111 {
		t.Errorf("MappedCVEs = %d, want 111", got)
	}
}

func TestSubStandardParents(t *testing.T) {
	for _, s := range Catalog() {
		if !s.SubStandard {
			continue
		}
		p, ok := ByAbbrev(s.Parent)
		if !ok {
			t.Errorf("%s: parent %q not in catalog", s.Abbrev, s.Parent)
			continue
		}
		if p.SubStandard {
			t.Errorf("%s: parent %s is itself a sub-standard", s.Abbrev, p.Abbrev)
		}
	}
}

func TestAbbrevsMatchesCatalog(t *testing.T) {
	cat := Catalog()
	abbrevs := Abbrevs()
	if len(abbrevs) != len(cat) {
		t.Fatalf("Abbrevs length %d != catalog length %d", len(abbrevs), len(cat))
	}
	for i := range cat {
		if abbrevs[i] != cat[i].Abbrev {
			t.Errorf("Abbrevs[%d] = %s, want %s", i, abbrevs[i], cat[i].Abbrev)
		}
	}
}

func TestSixStandardsOver90Percent(t *testing.T) {
	// Paper §5.2: six standards are used on over 90% of all websites.
	// "All websites" means the 9,733 measured domains; with Table 2's
	// site counts the six are DOM1, DOM, DOM2-E, DOM2-H, DOM2-C and HTML.
	n := 0
	for _, s := range Catalog() {
		if s.Sites > 8900 {
			n++
		}
	}
	if n != 6 {
		t.Errorf("standards used on >9000 sites = %d, want 6 (paper §5.2)", n)
	}
}

func TestBlockedOver90Percent(t *testing.T) {
	// Paper §5.4/§5.7: some standards (e.g. PT2, ALS) have block rates
	// above 90%.
	for _, a := range []Abbrev{"PT2", "ALS"} {
		s := MustByAbbrev(a)
		if s.BlockRate < 0.9 {
			t.Errorf("%s block rate %v, want >= 0.9", a, s.BlockRate)
		}
	}
}
