package standards

import (
	"fmt"
	"sort"
)

// Abbrev is the short identifier the paper uses for a standard (e.g. "AJAX",
// "H-C", "DOM1"). Abbreviations are unique within the catalog.
type Abbrev string

// Era buckets standards by when Firefox first shipped their most popular
// feature. It drives Figure 6 (introduction date vs popularity).
type Era int

// TrackerAffinity expresses how much of a standard's blockable usage is
// attributable to tracking scripts rather than advertising scripts. It
// drives Figure 7 (ad-only vs tracking-only block rates).
type TrackerAffinity float64

// Standard describes one Web API standard and its paper ground truth.
type Standard struct {
	// Abbrev is the paper's short label (unique key).
	Abbrev Abbrev
	// Name is the full standard name as published.
	Name string
	// Features is the number of instrumented methods and properties the
	// paper attributes to this standard (Table 2 column 3).
	Features int
	// Sites is the number of Alexa 10k sites that used at least one
	// feature of the standard in the default case (Table 2 column 4).
	Sites int
	// BlockRate is the fraction of default-case sites on which no feature
	// of the standard executed once AdBlock Plus and Ghostery were
	// installed (Table 2 column 5, 0..1).
	BlockRate float64
	// CVEs is the number of Firefox CVEs from the prior three years
	// associated with the standard's implementation (Table 2 column 6).
	CVEs int
	// IntroYear is the year Firefox first shipped the standard's most
	// popular feature (Figure 6 x-axis).
	IntroYear int
	// Tracker is the standard's tracker affinity in [0,1]; 0 means its
	// blockable usage is purely advertising, 1 purely tracking.
	Tracker TrackerAffinity
	// Fragmented marks standards whose most popular feature covers only
	// part of the standard's site set (the paper calls out HTML: Plugins,
	// whose top feature appears on 90 of the standard's 129 sites).
	Fragmented bool
	// SubStandard marks entries the paper carves out of a larger parent
	// standard (e.g. HTML: Canvas out of the HTML living standard).
	SubStandard bool
	// Parent is the abbreviation of the parent standard for sub-standards.
	Parent Abbrev
}

// NonStandard is the catch-all bucket for Firefox API endpoints that appear
// in no published standard document.
const NonStandard Abbrev = "NS"

// catalog lists all 75 categories. Rows present in the paper's Table 2 carry
// its exact numbers. The paper's Table 2 prints the abbreviation "H-WS" for
// both HTML: Web Sockets and HTML: Web Storage; Figure 4 distinguishes them
// as H-WB and H-WS, which is the disambiguation adopted here. Tail standards
// absent from Table 2 (used on <1% of sites and carrying no CVEs) take
// site-count targets consistent with the paper's aggregate claims: exactly
// 11 standards never used and 28 used on at most 1% of sites.
var catalog = []Standard{
	// --- Table 2 rows (paper ground truth) ---
	{Abbrev: "H-C", Name: "HTML: Canvas", Features: 54, Sites: 7061, BlockRate: 0.331, CVEs: 15, IntroYear: 2009, Tracker: 0.55, SubStandard: true, Parent: "HTML"},
	{Abbrev: "SVG", Name: "Scalable Vector Graphics 1.1 (2nd Edition)", Features: 138, Sites: 1554, BlockRate: 0.868, CVEs: 14, IntroYear: 2006, Tracker: 0.60},
	{Abbrev: "WEBGL", Name: "WebGL", Features: 136, Sites: 913, BlockRate: 0.607, CVEs: 13, IntroYear: 2011, Tracker: 0.55},
	{Abbrev: "H-WW", Name: "HTML: Web Workers", Features: 2, Sites: 952, BlockRate: 0.599, CVEs: 11, IntroYear: 2009, Tracker: 0.45, SubStandard: true, Parent: "HTML"},
	{Abbrev: "HTML5", Name: "HTML 5", Features: 69, Sites: 7077, BlockRate: 0.262, CVEs: 10, IntroYear: 2009, Tracker: 0.40},
	{Abbrev: "WEBA", Name: "Web Audio API", Features: 52, Sites: 157, BlockRate: 0.811, CVEs: 10, IntroYear: 2013, Tracker: 0.60},
	{Abbrev: "WRTC", Name: "WebRTC 1.0", Features: 28, Sites: 30, BlockRate: 0.292, CVEs: 8, IntroYear: 2013, Tracker: 0.90},
	{Abbrev: "AJAX", Name: "XMLHttpRequest", Features: 13, Sites: 7957, BlockRate: 0.139, CVEs: 8, IntroYear: 2004, Tracker: 0.45},
	{Abbrev: "DOM", Name: "DOM", Features: 36, Sites: 9088, BlockRate: 0.020, CVEs: 4, IntroYear: 2004, Tracker: 0.50},
	{Abbrev: "IDB", Name: "Indexed Database API", Features: 48, Sites: 302, BlockRate: 0.563, CVEs: 3, IntroYear: 2011, Tracker: 0.70},
	{Abbrev: "BE", Name: "Beacon", Features: 1, Sites: 2373, BlockRate: 0.836, CVEs: 2, IntroYear: 2014, Tracker: 0.85},
	{Abbrev: "MCS", Name: "Media Capture and Streams", Features: 4, Sites: 54, BlockRate: 0.490, CVEs: 2, IntroYear: 2012, Tracker: 0.50},
	{Abbrev: "WCR", Name: "Web Cryptography API", Features: 14, Sites: 7113, BlockRate: 0.678, CVEs: 2, IntroYear: 2014, Tracker: 0.90},
	{Abbrev: "CSS-VM", Name: "CSSOM View Module", Features: 28, Sites: 4833, BlockRate: 0.190, CVEs: 1, IntroYear: 2008, Tracker: 0.40},
	{Abbrev: "F", Name: "Fetch", Features: 21, Sites: 77, BlockRate: 0.333, CVEs: 1, IntroYear: 2015, Tracker: 0.55},
	{Abbrev: "GP", Name: "Gamepad", Features: 1, Sites: 3, BlockRate: 0.0, CVEs: 1, IntroYear: 2014, Tracker: 0.50},
	{Abbrev: "HRT", Name: "High Resolution Time, Level 2", Features: 1, Sites: 5769, BlockRate: 0.502, CVEs: 1, IntroYear: 2013, Tracker: 0.80},
	{Abbrev: "H-WB", Name: "HTML: Web Sockets", Features: 2, Sites: 544, BlockRate: 0.646, CVEs: 1, IntroYear: 2010, Tracker: 0.50, SubStandard: true, Parent: "HTML"},
	{Abbrev: "H-P", Name: "HTML: Plugins", Features: 10, Sites: 129, BlockRate: 0.293, CVEs: 1, IntroYear: 2005, Tracker: 0.65, Fragmented: true, SubStandard: true, Parent: "HTML"},
	{Abbrev: "WN", Name: "Web Notifications", Features: 5, Sites: 16, BlockRate: 0.0, CVEs: 1, IntroYear: 2013, Tracker: 0.50},
	{Abbrev: "RT", Name: "Resource Timing", Features: 3, Sites: 786, BlockRate: 0.575, CVEs: 1, IntroYear: 2012, Tracker: 0.80},
	{Abbrev: "V", Name: "Vibration API", Features: 1, Sites: 1, BlockRate: 0.0, CVEs: 1, IntroYear: 2012, Tracker: 0.50},
	{Abbrev: "BA", Name: "Battery Status API", Features: 2, Sites: 2579, BlockRate: 0.373, CVEs: 0, IntroYear: 2012, Tracker: 0.75},
	{Abbrev: "CSS-CR", Name: "CSS Conditional Rules Module, Level 3", Features: 1, Sites: 449, BlockRate: 0.365, CVEs: 0, IntroYear: 2013, Tracker: 0.40},
	{Abbrev: "CSS-FO", Name: "CSS Font Loading Module, Level 3", Features: 12, Sites: 2560, BlockRate: 0.335, CVEs: 0, IntroYear: 2014, Tracker: 0.45},
	{Abbrev: "CSS-OM", Name: "CSS Object Model (CSSOM)", Features: 15, Sites: 8193, BlockRate: 0.126, CVEs: 0, IntroYear: 2008, Tracker: 0.40},
	{Abbrev: "DOM1", Name: "DOM, Level 1 - Specification", Features: 47, Sites: 9139, BlockRate: 0.018, CVEs: 0, IntroYear: 2004, Tracker: 0.50},
	{Abbrev: "DOM2-C", Name: "DOM, Level 2 - Core Specification", Features: 31, Sites: 8951, BlockRate: 0.030, CVEs: 0, IntroYear: 2004, Tracker: 0.50},
	{Abbrev: "DOM2-E", Name: "DOM, Level 2 - Events Specification", Features: 7, Sites: 9077, BlockRate: 0.027, CVEs: 0, IntroYear: 2004, Tracker: 0.50},
	{Abbrev: "DOM2-H", Name: "DOM, Level 2 - HTML Specification", Features: 11, Sites: 9003, BlockRate: 0.045, CVEs: 0, IntroYear: 2004, Tracker: 0.50},
	{Abbrev: "DOM2-S", Name: "DOM, Level 2 - Style Specification", Features: 19, Sites: 8835, BlockRate: 0.043, CVEs: 0, IntroYear: 2004, Tracker: 0.45},
	{Abbrev: "DOM2-T", Name: "DOM, Level 2 - Traversal and Range Specification", Features: 36, Sites: 4590, BlockRate: 0.334, CVEs: 0, IntroYear: 2005, Tracker: 0.50},
	{Abbrev: "DOM3-C", Name: "DOM, Level 3 - Core Specification", Features: 10, Sites: 8495, BlockRate: 0.039, CVEs: 0, IntroYear: 2005, Tracker: 0.50},
	{Abbrev: "DOM3-X", Name: "DOM, Level 3 - XPath Specification", Features: 9, Sites: 381, BlockRate: 0.791, CVEs: 0, IntroYear: 2005, Tracker: 0.65},
	{Abbrev: "DOM-PS", Name: "DOM Parsing and Serialization", Features: 3, Sites: 2922, BlockRate: 0.607, CVEs: 0, IntroYear: 2012, Tracker: 0.55},
	{Abbrev: "EC", Name: "execCommand", Features: 12, Sites: 2730, BlockRate: 0.240, CVEs: 0, IntroYear: 2005, Tracker: 0.45},
	{Abbrev: "FA", Name: "File API", Features: 9, Sites: 1991, BlockRate: 0.580, CVEs: 0, IntroYear: 2010, Tracker: 0.55},
	{Abbrev: "FULL", Name: "Fullscreen API", Features: 9, Sites: 383, BlockRate: 0.799, CVEs: 0, IntroYear: 2012, Tracker: 0.50},
	{Abbrev: "GEO", Name: "Geolocation API", Features: 4, Sites: 174, BlockRate: 0.131, CVEs: 0, IntroYear: 2009, Tracker: 0.60},
	{Abbrev: "H-CM", Name: "HTML: Channel Messaging", Features: 4, Sites: 5018, BlockRate: 0.774, CVEs: 0, IntroYear: 2010, Tracker: 0.40, SubStandard: true, Parent: "HTML"},
	{Abbrev: "H-WS", Name: "HTML: Web Storage", Features: 8, Sites: 7875, BlockRate: 0.292, CVEs: 0, IntroYear: 2009, Tracker: 0.65, SubStandard: true, Parent: "HTML"},
	{Abbrev: "HTML", Name: "HTML", Features: 195, Sites: 8980, BlockRate: 0.043, CVEs: 0, IntroYear: 2004, Tracker: 0.45},
	{Abbrev: "H-HI", Name: "HTML: History Interface", Features: 6, Sites: 1729, BlockRate: 0.187, CVEs: 0, IntroYear: 2010, Tracker: 0.45, SubStandard: true, Parent: "HTML"},
	{Abbrev: "MSE", Name: "Media Source Extensions", Features: 8, Sites: 1616, BlockRate: 0.375, CVEs: 0, IntroYear: 2013, Tracker: 0.45},
	{Abbrev: "PT", Name: "Performance Timeline", Features: 2, Sites: 4690, BlockRate: 0.758, CVEs: 0, IntroYear: 2012, Tracker: 0.80},
	{Abbrev: "PT2", Name: "Performance Timeline, Level 2", Features: 1, Sites: 1728, BlockRate: 0.937, CVEs: 0, IntroYear: 2015, Tracker: 0.90},
	{Abbrev: "SEL", Name: "Selection API", Features: 14, Sites: 2575, BlockRate: 0.366, CVEs: 0, IntroYear: 2009, Tracker: 0.45},
	{Abbrev: "SLC", Name: "Selectors API, Level 1", Features: 6, Sites: 8674, BlockRate: 0.077, CVEs: 0, IntroYear: 2013, Tracker: 0.45},
	{Abbrev: "TC", Name: "Timing control for script-based animations", Features: 1, Sites: 3568, BlockRate: 0.769, CVEs: 0, IntroYear: 2011, Tracker: 0.50},
	{Abbrev: "UIE", Name: "UI Events Specification", Features: 8, Sites: 1137, BlockRate: 0.568, CVEs: 0, IntroYear: 2013, Tracker: 0.15},
	{Abbrev: "UTL", Name: "User Timing, Level 2", Features: 4, Sites: 3325, BlockRate: 0.337, CVEs: 0, IntroYear: 2013, Tracker: 0.75},
	{Abbrev: "DOM4", Name: "DOM4", Features: 3, Sites: 5747, BlockRate: 0.376, CVEs: 0, IntroYear: 2012, Tracker: 0.50},
	{Abbrev: NonStandard, Name: "Non-Standard", Features: 65, Sites: 8669, BlockRate: 0.245, CVEs: 0, IntroYear: 2004, Tracker: 0.55},

	// --- Tail standards (not in Table 2: <1% of sites, no CVEs) ---
	{Abbrev: "ALS", Name: "Ambient Light Events", Features: 2, Sites: 14, BlockRate: 1.000, CVEs: 0, IntroYear: 2013, Tracker: 0.85},
	{Abbrev: "CO", Name: "Console API", Features: 12, Sites: 88, BlockRate: 0.180, CVEs: 0, IntroYear: 2010, Tracker: 0.35},
	{Abbrev: "DO", Name: "DeviceOrientation Event Specification", Features: 6, Sites: 43, BlockRate: 0.420, CVEs: 0, IntroYear: 2011, Tracker: 0.70},
	{Abbrev: "DU", Name: "UndoManager and DOM Transaction", Features: 4, Sites: 0, BlockRate: 0, CVEs: 0, IntroYear: 2012, Tracker: 0.50},
	{Abbrev: "E", Name: "Encoding", Features: 8, Sites: 1, BlockRate: 0.0, CVEs: 0, IntroYear: 2014, Tracker: 0.50},
	{Abbrev: "EME", Name: "Encrypted Media Extensions", Features: 14, Sites: 0, BlockRate: 0, CVEs: 0, IntroYear: 2015, Tracker: 0.50},
	{Abbrev: "GIM", Name: "MediaStream Image Capture", Features: 6, Sites: 0, BlockRate: 0, CVEs: 0, IntroYear: 2015, Tracker: 0.50},
	{Abbrev: "H-B", Name: "HTML: Base64 Utility Methods", Features: 2, Sites: 0, BlockRate: 0, CVEs: 0, IntroYear: 2009, Tracker: 0.50, SubStandard: true, Parent: "HTML"},
	{Abbrev: "HTML51", Name: "HTML 5.1", Features: 22, Sites: 72, BlockRate: 0.350, CVEs: 0, IntroYear: 2015, Tracker: 0.45},
	{Abbrev: "MCD", Name: "Media Capture Depth Stream Extensions", Features: 4, Sites: 0, BlockRate: 0, CVEs: 0, IntroYear: 2015, Tracker: 0.50},
	{Abbrev: "MSR", Name: "MediaStream Recording", Features: 6, Sites: 0, BlockRate: 0, CVEs: 0, IntroYear: 2014, Tracker: 0.50},
	{Abbrev: "NT", Name: "Navigation Timing", Features: 8, Sites: 95, BlockRate: 0.540, CVEs: 0, IntroYear: 2011, Tracker: 0.80},
	{Abbrev: "PE", Name: "Pointer Events", Features: 12, Sites: 61, BlockRate: 0.250, CVEs: 0, IntroYear: 2015, Tracker: 0.25},
	{Abbrev: "PL", Name: "Pointer Lock", Features: 4, Sites: 0, BlockRate: 0, CVEs: 0, IntroYear: 2013, Tracker: 0.50},
	{Abbrev: "PV", Name: "Page Visibility", Features: 2, Sites: 37, BlockRate: 0.610, CVEs: 0, IntroYear: 2012, Tracker: 0.75},
	{Abbrev: "SD", Name: "Shadow DOM", Features: 8, Sites: 0, BlockRate: 0, CVEs: 0, IntroYear: 2015, Tracker: 0.50},
	{Abbrev: "SO", Name: "Screen Orientation", Features: 4, Sites: 9, BlockRate: 0.330, CVEs: 0, IntroYear: 2014, Tracker: 0.60},
	{Abbrev: "SW", Name: "Service Workers", Features: 14, Sites: 0, BlockRate: 0, CVEs: 0, IntroYear: 2015, Tracker: 0.50},
	{Abbrev: "TPE", Name: "Tracking Preference Expression (DNT)", Features: 2, Sites: 0, BlockRate: 0, CVEs: 0, IntroYear: 2013, Tracker: 0.85},
	{Abbrev: "URL", Name: "URL", Features: 10, Sites: 54, BlockRate: 0.290, CVEs: 0, IntroYear: 2013, Tracker: 0.45},
	{Abbrev: "WEBVTT", Name: "WebVTT: The Web Video Text Tracks Format", Features: 10, Sites: 0, BlockRate: 0, CVEs: 0, IntroYear: 2014, Tracker: 0.50},
	{Abbrev: "DOM2-V", Name: "DOM, Level 2 - Views Specification", Features: 3, Sites: 2, BlockRate: 0.0, CVEs: 0, IntroYear: 2004, Tracker: 0.50},
}

// Catalog returns the full catalog of 75 categories (74 standards plus the
// Non-Standard bucket) in a stable, deterministic order: descending by paper
// site count, ties broken by abbreviation. The returned slice is a copy.
func Catalog() []Standard {
	out := make([]Standard, len(catalog))
	copy(out, catalog)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Sites != out[j].Sites {
			return out[i].Sites > out[j].Sites
		}
		return out[i].Abbrev < out[j].Abbrev
	})
	return out
}

// ByAbbrev returns the standard with the given abbreviation.
func ByAbbrev(a Abbrev) (Standard, bool) {
	for _, s := range catalog {
		if s.Abbrev == a {
			return s, true
		}
	}
	return Standard{}, false
}

// MustByAbbrev is ByAbbrev for abbreviations known to exist; it panics on a
// missing entry, which indicates a programming error.
func MustByAbbrev(a Abbrev) Standard {
	s, ok := ByAbbrev(a)
	if !ok {
		panic(fmt.Sprintf("standards: unknown abbreviation %q", a))
	}
	return s
}

// Count returns the number of catalog categories (75 in the paper).
func Count() int { return len(catalog) }

// TotalFeatures returns the total number of instrumented features across the
// catalog (1,392 in the paper).
func TotalFeatures() int {
	n := 0
	for _, s := range catalog {
		n += s.Features
	}
	return n
}

// NeverUsed returns the standards whose paper site count is zero (11 in the
// paper).
func NeverUsed() []Standard {
	var out []Standard
	for _, s := range Catalog() {
		if s.Sites == 0 {
			out = append(out, s)
		}
	}
	return out
}

// UsedAtMost returns the standards used on at most maxSites sites, including
// never-used ones. With maxSites = 100 (1% of the Alexa 10k) the paper
// reports 28 standards.
func UsedAtMost(maxSites int) []Standard {
	var out []Standard
	for _, s := range Catalog() {
		if s.Sites <= maxSites {
			out = append(out, s)
		}
	}
	return out
}

// MappedCVEs returns the total number of CVEs associated with any standard
// (111 in the paper).
func MappedCVEs() int {
	n := 0
	for _, s := range catalog {
		n += s.CVEs
	}
	return n
}

// Abbrevs returns all abbreviations in Catalog order.
func Abbrevs() []Abbrev {
	cat := Catalog()
	out := make([]Abbrev, len(cat))
	for i, s := range cat {
		out[i] = s.Abbrev
	}
	return out
}

// Validate checks catalog invariants. It is exercised by tests and by
// consumers that want a startup sanity check.
func Validate() error {
	seen := make(map[Abbrev]bool, len(catalog))
	for _, s := range catalog {
		if s.Abbrev == "" || s.Name == "" {
			return fmt.Errorf("standards: entry with empty abbrev or name: %+v", s)
		}
		if seen[s.Abbrev] {
			return fmt.Errorf("standards: duplicate abbreviation %q", s.Abbrev)
		}
		seen[s.Abbrev] = true
		if s.Features <= 0 {
			return fmt.Errorf("standards: %s has non-positive feature count %d", s.Abbrev, s.Features)
		}
		if s.Sites < 0 || s.Sites > 10000 {
			return fmt.Errorf("standards: %s has site count %d outside [0,10000]", s.Abbrev, s.Sites)
		}
		if s.BlockRate < 0 || s.BlockRate > 1 {
			return fmt.Errorf("standards: %s has block rate %v outside [0,1]", s.Abbrev, s.BlockRate)
		}
		if s.Tracker < 0 || s.Tracker > 1 {
			return fmt.Errorf("standards: %s has tracker affinity %v outside [0,1]", s.Abbrev, s.Tracker)
		}
		if s.IntroYear < 2004 || s.IntroYear > 2016 {
			return fmt.Errorf("standards: %s has intro year %d outside [2004,2016]", s.Abbrev, s.IntroYear)
		}
		if s.SubStandard {
			if _, ok := ByAbbrev(s.Parent); !ok {
				return fmt.Errorf("standards: sub-standard %s has unknown parent %q", s.Abbrev, s.Parent)
			}
		}
	}
	if got := TotalFeatures(); got != 1392 {
		return fmt.Errorf("standards: total features = %d, want 1392", got)
	}
	if got := len(catalog); got != 75 {
		return fmt.Errorf("standards: catalog has %d entries, want 75", got)
	}
	if got := len(NeverUsed()); got != 11 {
		return fmt.Errorf("standards: %d never-used standards, want 11", got)
	}
	if got := len(UsedAtMost(100)); got != 28 {
		return fmt.Errorf("standards: %d standards at <=1%% of sites, want 28", got)
	}
	if got := MappedCVEs(); got != 111 {
		return fmt.Errorf("standards: %d mapped CVEs, want 111", got)
	}
	return nil
}
