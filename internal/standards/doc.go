// Package standards catalogs the Web API standards studied in "Browser
// Feature Usage on the Modern Web" (Snyder et al., IMC 2016).
//
// The paper identifies 74 Web API standards implemented in Firefox 46 plus a
// catch-all Non-Standard bucket, for 75 categories covering 1,392
// JavaScript-exposed features. This package embeds that catalog together
// with the paper's per-standard ground truth (Table 2): instrumented feature
// counts, default-case site counts on the Alexa 10k, block rates under
// AdBlock Plus + Ghostery, and associated Firefox CVE counts. The synthetic
// web generator consumes these values as calibration targets; the analysis
// pipeline never reads them directly.
package standards
