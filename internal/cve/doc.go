// Package cve models the vulnerability dataset of the paper's §3.5.
//
// The paper searches the CVE database for entries from the last three years
// that mention Firefox: 470 records, of which 14 turn out on manual
// inspection to concern other web software, leaving 456 Firefox CVEs; 111 of
// those are manually associated with a specific web standard (Table 2,
// column 6). This package generates a synthetic database with exactly that
// triage structure, including the two records the paper cites by number:
// CVE-2013-0763 (remote execution in the WebGL implementation) and
// CVE-2014-1577 (information disclosure in the Web Audio implementation).
package cve
