package cve

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/standards"
)

func TestGenerateValidates(t *testing.T) {
	db := Generate(1)
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(7)
	b := Generate(7)
	if len(a.Records) != len(b.Records) {
		t.Fatalf("record counts differ")
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d differs between runs: %+v vs %+v", i, a.Records[i], b.Records[i])
		}
	}
}

func TestCitedRecordsPresent(t *testing.T) {
	db := Generate(1)
	webgl, ok := db.ByID("CVE-2013-0763")
	if !ok {
		t.Fatal("CVE-2013-0763 missing")
	}
	if webgl.Standard != "WEBGL" || !webgl.Firefox {
		t.Errorf("CVE-2013-0763 = %+v, want Firefox WebGL record", webgl)
	}
	weba, ok := db.ByID("CVE-2014-1577")
	if !ok {
		t.Fatal("CVE-2014-1577 missing")
	}
	if weba.Standard != "WEBA" || !weba.Firefox {
		t.Errorf("CVE-2014-1577 = %+v, want Firefox Web Audio record", weba)
	}
	if !strings.Contains(weba.Description, "Web Audio") {
		t.Errorf("CVE-2014-1577 description %q does not mention Web Audio", weba.Description)
	}
}

func TestPerStandardCounts(t *testing.T) {
	db := Generate(3)
	per := db.PerStandard()
	want := map[string]int{"H-C": 15, "SVG": 14, "WEBGL": 13, "H-WW": 11, "AJAX": 8, "DOM": 4, "V": 1}
	for abbrev, n := range want {
		if got := per[standards.Abbrev(abbrev)]; got != n {
			t.Errorf("standard %s: %d CVEs, want %d", abbrev, got, n)
		}
	}
}

func TestYearsInWindow(t *testing.T) {
	db := Generate(1)
	for _, r := range db.Records {
		if r.Year < 2013 || r.Year > 2016 {
			t.Fatalf("record %s year %d outside the paper's 3-year window", r.ID, r.Year)
		}
		if !strings.HasPrefix(r.ID, "CVE-") {
			t.Fatalf("record id %q malformed", r.ID)
		}
	}
}

func TestSeverityString(t *testing.T) {
	if SeverityCritical.String() != "critical" || SeverityLow.String() != "low" {
		t.Error("severity strings wrong")
	}
	if got := Severity(42).String(); got != "Severity(42)" {
		t.Errorf("unknown severity = %q", got)
	}
}

func TestByIDMissing(t *testing.T) {
	db := Generate(1)
	if _, ok := db.ByID("CVE-1999-0001"); ok {
		t.Fatal("found a record that should not exist")
	}
}

func TestAnySeedValidates(t *testing.T) {
	check := func(seed int64) bool {
		return Generate(seed%100).Validate() == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}
