package cve

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/standards"
)

// Totals from the paper's §3.5.
const (
	// TotalMentions is the number of CVEs mentioning Firefox.
	TotalMentions = 470
	// NotFirefox is the number of mentions that are not Firefox bugs.
	NotFirefox = 14
	// FirefoxRelevant is the number of genuine Firefox CVEs.
	FirefoxRelevant = TotalMentions - NotFirefox
	// StandardMapped is the number of CVEs attributable to a standard.
	StandardMapped = 111
)

// Severity is a coarse impact class for a record.
type Severity int

const (
	SeverityLow Severity = iota
	SeverityModerate
	SeverityHigh
	SeverityCritical
)

func (s Severity) String() string {
	switch s {
	case SeverityLow:
		return "low"
	case SeverityModerate:
		return "moderate"
	case SeverityHigh:
		return "high"
	case SeverityCritical:
		return "critical"
	default:
		return fmt.Sprintf("Severity(%d)", int(s))
	}
}

// Record is one CVE database entry after triage.
type Record struct {
	// ID is the CVE identifier, e.g. "CVE-2013-0763".
	ID string
	// Year is the publication year.
	Year int
	// Description is the advisory summary.
	Description string
	// Firefox reports whether manual inspection confirmed the record as
	// a Firefox bug (the paper discards 14 records where Firefox was
	// only the demonstration vehicle).
	Firefox bool
	// Standard is the associated standard's abbreviation, or "" when the
	// record could not be attributed to a specific standard.
	Standard standards.Abbrev
	// Severity is the coarse impact class.
	Severity Severity
}

// Database is the triaged record set.
type Database struct {
	Records []Record
}

var vulnKinds = []string{
	"use-after-free",
	"out-of-bounds read",
	"out-of-bounds write",
	"buffer overflow",
	"memory corruption",
	"type confusion",
	"information disclosure",
	"same-origin-policy bypass",
	"integer overflow",
	"privilege escalation",
}

// Generate builds the synthetic database for a seed. Record counts and
// per-standard attribution match the paper exactly for every seed; only the
// cosmetic fields (identifiers, descriptions, severities) vary.
func Generate(seed int64) *Database {
	rng := rand.New(rand.NewSource(seed))
	db := &Database{Records: make([]Record, 0, TotalMentions)}

	serialByYear := map[int]int{2013: 2000, 2014: 3000, 2015: 2700, 2016: 1900}
	nextID := func(year int) string {
		serialByYear[year]++
		return fmt.Sprintf("CVE-%d-%04d", year, serialByYear[year])
	}
	year := func() int { return 2013 + rng.Intn(4) }

	// The two records the paper cites, with their real identifiers.
	db.Records = append(db.Records,
		Record{
			ID:          "CVE-2013-0763",
			Year:        2013,
			Description: "Potential remote execution vulnerability in Firefox's implementation of the WebGL standard.",
			Firefox:     true,
			Standard:    "WEBGL",
			Severity:    SeverityCritical,
		},
		Record{
			ID:          "CVE-2014-1577",
			Year:        2014,
			Description: "Potential information-disclosing bug in Firefox's implementation of the Web Audio API standard.",
			Firefox:     true,
			Standard:    "WEBA",
			Severity:    SeverityHigh,
		},
	)

	// Standard-mapped records per Table 2's CVE column (the two cited
	// records count against their standards' budgets).
	emitted := map[standards.Abbrev]int{"WEBGL": 1, "WEBA": 1}
	for _, std := range standards.Catalog() {
		for emitted[std.Abbrev] < std.CVEs {
			emitted[std.Abbrev]++
			y := year()
			kind := vulnKinds[rng.Intn(len(vulnKinds))]
			db.Records = append(db.Records, Record{
				ID:          nextID(y),
				Year:        y,
				Description: fmt.Sprintf("A %s in Firefox's implementation of the %s standard.", kind, std.Name),
				Firefox:     true,
				Standard:    std.Abbrev,
				Severity:    Severity(rng.Intn(4)),
			})
		}
	}

	// Firefox records with no standard attribution (engine internals,
	// JIT, networking, UI spoofing, ...).
	unmappedAreas := []string{
		"the JavaScript JIT compiler", "the networking stack",
		"the certificate verifier", "the URL bar rendering",
		"the garbage collector", "the image decoding library",
		"the add-on manager", "the layout engine",
		"the sandboxing layer", "the font shaping library",
	}
	for len(db.Records) < FirefoxRelevant {
		y := year()
		kind := vulnKinds[rng.Intn(len(vulnKinds))]
		area := unmappedAreas[rng.Intn(len(unmappedAreas))]
		db.Records = append(db.Records, Record{
			ID:          nextID(y),
			Year:        y,
			Description: fmt.Sprintf("A %s in %s of Firefox.", kind, area),
			Firefox:     true,
			Severity:    Severity(rng.Intn(4)),
		})
	}

	// Non-Firefox mentions (Firefox used only to demonstrate a bug in
	// other web software).
	otherSoftware := []string{
		"a WordPress plugin", "an enterprise proxy appliance",
		"a Java applet runtime", "a PDF reader plugin",
		"an ad server platform", "a web mail application",
	}
	for len(db.Records) < TotalMentions {
		y := year()
		sw := otherSoftware[rng.Intn(len(otherSoftware))]
		db.Records = append(db.Records, Record{
			ID:          nextID(y),
			Year:        y,
			Description: fmt.Sprintf("Vulnerability in %s, demonstrated using Firefox.", sw),
			Firefox:     false,
			Severity:    Severity(rng.Intn(4)),
		})
	}

	sort.Slice(db.Records, func(i, j int) bool { return db.Records[i].ID < db.Records[j].ID })
	return db
}

// FirefoxRecords returns the records confirmed as Firefox bugs (456).
func (db *Database) FirefoxRecords() []Record {
	var out []Record
	for _, r := range db.Records {
		if r.Firefox {
			out = append(out, r)
		}
	}
	return out
}

// Mapped returns the Firefox records attributed to a standard (111).
func (db *Database) Mapped() []Record {
	var out []Record
	for _, r := range db.Records {
		if r.Firefox && r.Standard != "" {
			out = append(out, r)
		}
	}
	return out
}

// PerStandard returns the CVE count per standard abbreviation.
func (db *Database) PerStandard() map[standards.Abbrev]int {
	out := make(map[standards.Abbrev]int)
	for _, r := range db.Records {
		if r.Firefox && r.Standard != "" {
			out[r.Standard]++
		}
	}
	return out
}

// ByID returns the record with the given CVE identifier.
func (db *Database) ByID(id string) (Record, bool) {
	for _, r := range db.Records {
		if r.ID == id {
			return r, true
		}
	}
	return Record{}, false
}

// Validate checks the database against the paper's triage totals.
func (db *Database) Validate() error {
	if got := len(db.Records); got != TotalMentions {
		return fmt.Errorf("cve: %d records, want %d", got, TotalMentions)
	}
	if got := len(db.FirefoxRecords()); got != FirefoxRelevant {
		return fmt.Errorf("cve: %d Firefox records, want %d", got, FirefoxRelevant)
	}
	if got := len(db.Mapped()); got != StandardMapped {
		return fmt.Errorf("cve: %d standard-mapped records, want %d", got, StandardMapped)
	}
	per := db.PerStandard()
	for _, std := range standards.Catalog() {
		if per[std.Abbrev] != std.CVEs {
			return fmt.Errorf("cve: standard %s has %d CVEs, want %d", std.Abbrev, per[std.Abbrev], std.CVEs)
		}
	}
	seen := make(map[string]bool, len(db.Records))
	for _, r := range db.Records {
		if seen[r.ID] {
			return fmt.Errorf("cve: duplicate id %s", r.ID)
		}
		seen[r.ID] = true
	}
	return nil
}
