// Tracker-vs-ad: reproduce Figure 7's attribution analysis with the
// blocking substrate directly — parse the synthetic EasyList and tracker
// library, build single-extension browser profiles, and show how the two
// extension families block different request populations before any crawl
// statistics enter the picture.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/blocking"
	"repro/internal/core"
	"repro/internal/measure"
	"repro/internal/report"
	"repro/internal/synthweb"
)

func main() {
	study, err := core.NewStudy(core.Config{Sites: 400, Seed: 19})
	if err != nil {
		log.Fatal(err)
	}
	defer study.Close()

	// 1. The raw blocking substrate: what does each list cover?
	list, err := blocking.ParseList("easylist-synthetic", study.Web.FilterListText)
	if err != nil {
		log.Fatal(err)
	}
	abp := blocking.NewEngine(list)
	ghostery, err := blocking.ParseTrackerDB(study.Web.TrackerLibText)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AdBlock Plus list:  %d URL rules, %d hiding rules\n", abp.RuleCount(), len(list.Hiding))
	fmt.Printf("Ghostery library:   %d trackers in %d categories\n\n", ghostery.Size(), len(ghostery.Categories()))

	page := study.Web.Sites[0].Domain
	probe := func(host string) {
		req := blocking.Request{
			URL:      "http://" + host + "/tags/" + page + "/home.js",
			PageHost: page,
			Type:     blocking.ResourceScript,
		}
		fmt.Printf("  %-22s adblock=%-5v ghostery=%v\n", host, abp.ShouldBlock(req), ghostery.ShouldBlock(req))
	}
	fmt.Println("Request probes (script loads from third-party hosts):")
	probe(study.Web.AdDomains[0])
	probe(study.Web.TrackerDomains[0])
	probe(study.Web.DualDomains[0])
	probe("cdn." + page) // first-party CDN: never blocked
	fmt.Println()

	// 2. The measured consequence: per-standard ad-only vs tracker-only
	// block rates (Figure 7).
	results, err := study.RunSurvey()
	if err != nil {
		log.Fatal(err)
	}
	report.Figure7(os.Stdout, results.Analysis.AdVsTrackerRates())

	// 3. Element hiding: the ad container disappears under ABP.
	var site *synthweb.Site
	for _, s := range study.Web.Sites {
		if s.Failure == synthweb.FailNone {
			site = s
			break
		}
	}
	fmt.Printf("\nelement hiding selectors on %s: %v\n", site.Domain, abp.HideSelectors(site.Domain))

	def := results.Analysis.StandardSites(measure.CaseDefault)
	fmt.Printf("standards in use on the measured web: %d\n", len(def))
}
