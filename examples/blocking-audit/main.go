// Blocking audit: measure how ad- and tracking-blocking extensions change
// the web platform's effective API surface (paper §5.7). The example runs
// the survey in all four browser configurations and reports the standards
// that are disproportionately blocked — the ~10% of features prevented from
// executing more than 90% of the time.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/core"
	"repro/internal/measure"
	"repro/internal/standards"
)

func main() {
	study, err := core.NewStudy(core.Config{Sites: 400, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	defer study.Close()

	results, err := study.RunSurvey()
	if err != nil {
		log.Fatal(err)
	}
	a := results.Analysis

	rates := a.BlockRates(measure.CaseBlocking)
	type row struct {
		std  standards.Standard
		rate float64
		def  int
	}
	var rows []row
	for _, std := range standards.Catalog() {
		br := rates[std.Abbrev]
		if br.DefaultSites == 0 {
			continue
		}
		rows = append(rows, row{std: std, rate: br.Rate, def: br.DefaultSites})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].rate > rows[j].rate })

	fmt.Println("Standards most affected by AdBlock Plus + Ghostery:")
	fmt.Printf("%-8s %-44s %8s %10s\n", "std", "name", "sites", "blockrate")
	for _, r := range rows[:10] {
		fmt.Printf("%-8s %-44s %8d %9.1f%%\n", r.std.Abbrev, clip(r.std.Name, 44), r.def, r.rate*100)
	}

	over75 := 0
	for _, r := range rows {
		if r.rate > 0.75 {
			over75++
		}
	}
	fmt.Printf("\nstandards blocked >75%% of the time: %d (paper: 16)\n", over75)

	// Feature-level view: how much of the corpus effectively disappears.
	defBands := a.Bands(measure.CaseDefault)
	blkBands := a.Bands(measure.CaseBlocking)
	fmt.Printf("features never seen:    %d default -> %d blocking\n",
		defBands.NeverUsed, blkBands.NeverUsed)
	fmt.Printf("standards observed:     %d default -> %d blocking (paper: 64 -> 60)\n",
		a.UsedStandards(measure.CaseDefault), a.UsedStandards(measure.CaseBlocking))

	// Which extension does the blocking? (paper §5.7.2)
	fmt.Println("\nAttribution (ad-only vs tracker-only profiles):")
	for _, p := range a.AdVsTrackerRates() {
		if p.Sites < 20 {
			continue
		}
		switch {
		case p.TrackerRate > p.AdRate+0.15:
			fmt.Printf("  %-8s blocked mainly by Ghostery   (ad %4.0f%%, tracker %4.0f%%)\n",
				p.Standard, p.AdRate*100, p.TrackerRate*100)
		case p.AdRate > p.TrackerRate+0.15:
			fmt.Printf("  %-8s blocked mainly by AdBlock    (ad %4.0f%%, tracker %4.0f%%)\n",
				p.Standard, p.AdRate*100, p.TrackerRate*100)
		}
	}
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}
