// Quickstart: generate a small synthetic web, run the instrumented survey,
// and print the headline feature-usage numbers — the fastest path from zero
// to the paper's §5.3 results.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/measure"
	"repro/internal/report"
)

func main() {
	// 300 sites keeps the quickstart under a minute; -sites 10000 on
	// cmd/crawl reproduces paper scale.
	study, err := core.NewStudy(core.Config{Sites: 300, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	defer study.Close()

	fmt.Printf("corpus: %d features across %d WebIDL files\n",
		len(study.Registry.Features), len(study.Registry.Files))
	fmt.Printf("web:    %d ranked sites (%d monthly visits at rank 1)\n\n",
		len(study.Web.Sites), study.Ranking().Sites[0].MonthlyVisits)

	results, err := study.RunSurvey()
	if err != nil {
		log.Fatal(err)
	}

	report.Table1(os.Stdout, results.Stats)
	fmt.Println()
	report.Headlines(os.Stdout, results.Analysis, study.CVEs)

	// The single most popular feature, as the paper reports
	// Document.prototype.createElement on >90% of sites.
	fs := results.Analysis.FeatureSites(measure.CaseDefault)
	best, bestSites := 0, 0
	for id, n := range fs {
		if n > bestSites {
			best, bestSites = id, n
		}
	}
	fmt.Printf("\nmost popular feature: %s on %d of %d measured sites\n",
		study.Registry.Features[best].Name(), bestSites, results.Stats.DomainsMeasured)
}
