// Closed web: the paper's §7.3 future work, implemented. The open-web
// survey stops at login walls; this example runs the same monkey-testing
// crawler twice over the member sites — once anonymously, once with
// credentials — and shows the standards that only exist behind logins
// (media DRM, service workers, recording: the standards the open web never
// exercises).
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/crawler"
	"repro/internal/measure"
	"repro/internal/standards"
	"repro/internal/synthweb"
	"repro/internal/webapi"
	"repro/internal/webidl"
)

func main() {
	reg, err := webidl.Generate(42)
	if err != nil {
		log.Fatal(err)
	}
	web, err := synthweb.Generate(reg, synthweb.Config{Sites: 200, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	bind := webapi.NewBindings(reg)

	members := 0
	for _, s := range web.Sites {
		if web.HasMembersArea(s) {
			members++
		}
	}
	fmt.Printf("generated web: %d sites, %d with members areas\n", len(web.Sites), members)
	fmt.Printf("closed-web standard pool: %v\n\n", synthweb.ClosedWebStandards())

	stdSites := func(withCreds bool) map[standards.Abbrev]int {
		cfg := crawler.DefaultConfig(42)
		cfg.Cases = []measure.Case{measure.CaseDefault}
		cfg.WithCredentials = withCreds
		c := crawler.New(web, bind, cfg)
		logm, _, err := c.Run()
		if err != nil {
			log.Fatal(err)
		}
		out := map[standards.Abbrev]int{}
		for site := range web.Sites {
			u := logm.SiteUnion(measure.CaseDefault, site)
			if u == nil {
				continue
			}
			seen := map[standards.Abbrev]bool{}
			for _, f := range reg.Features {
				if u.Get(f.ID) && !seen[f.Standard] {
					seen[f.Standard] = true
					out[f.Standard]++
				}
			}
		}
		return out
	}

	fmt.Println("crawling anonymously (the paper's open-web scope)...")
	open := stdSites(false)
	fmt.Println("crawling with credentials (§7.3)...")
	closed := stdSites(true)

	type delta struct {
		std  standards.Abbrev
		gain int
	}
	var gains []delta
	for std, n := range closed {
		if n > open[std] {
			gains = append(gains, delta{std, n - open[std]})
		}
	}
	sort.Slice(gains, func(i, j int) bool {
		if gains[i].gain != gains[j].gain {
			return gains[i].gain > gains[j].gain
		}
		return gains[i].std < gains[j].std
	})

	fmt.Println("\nstandards visible only (or more often) behind logins:")
	fmt.Printf("%-8s %-44s %6s %6s\n", "std", "name", "open", "auth")
	for _, g := range gains {
		name := standards.MustByAbbrev(g.std).Name
		if len(name) > 44 {
			name = name[:41] + "..."
		}
		fmt.Printf("%-8s %-44s %6d %6d\n", g.std, name, open[g.std], closed[g.std])
	}
	if len(gains) == 0 {
		fmt.Println("(none — increase the site count)")
		return
	}
	fmt.Printf("\n=> the closed web exercises %d standards the open web never shows,\n", len(gains))
	fmt.Println("   confirming the paper's conjecture that logged-in functionality uses a broader feature set.")
}
