// Feature timeline: relate browser feature age to popularity (paper §5.6,
// Figure 6) using the historical Firefox build model. The example dates
// every standard by the paper's rule — the introduction of its currently
// most popular feature — and prints the old-popular / old-unpopular /
// new-popular / new-unpopular quadrants the paper walks through.
package main

import (
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/core"
)

func main() {
	study, err := core.NewStudy(core.Config{Sites: 400, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	defer study.Close()

	results, err := study.RunSurvey()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("release history: %d Firefox versions, %s through %s\n\n",
		len(study.History.Releases()),
		study.History.Releases()[0].Version,
		study.History.Releases()[len(study.History.Releases())-1].Version)

	points := results.Analysis.AgeSeries(study.History)
	measured := results.Stats.DomainsMeasured
	popular := func(p analysis.AgePoint) bool { return p.Sites*10 >= measured*4 } // >=40% of sites
	old := func(p analysis.AgePoint) bool { return p.Introduced.Date.Year() <= 2009 }

	quads := map[string][]analysis.AgePoint{}
	for _, p := range points {
		if p.Sites == 0 {
			continue
		}
		key := ""
		switch {
		case old(p) && popular(p):
			key = "old, popular (paper's AJAX quadrant)"
		case old(p) && !popular(p):
			key = "old, unpopular (paper's HTML: Plugins quadrant)"
		case !old(p) && popular(p):
			key = "new, popular (paper's Selectors L1 quadrant)"
		default:
			key = "new, unpopular (paper's Vibration quadrant)"
		}
		quads[key] = append(quads[key], p)
	}

	for _, key := range []string{
		"old, popular (paper's AJAX quadrant)",
		"old, unpopular (paper's HTML: Plugins quadrant)",
		"new, popular (paper's Selectors L1 quadrant)",
		"new, unpopular (paper's Vibration quadrant)",
	} {
		fmt.Println(key + ":")
		for i, p := range quads[key] {
			if i >= 6 {
				fmt.Printf("  ... and %d more\n", len(quads[key])-6)
				break
			}
			fmt.Printf("  %-8s introduced %s, used on %4d sites, blocked %4.0f%%\n",
				p.Standard, p.Introduced.Date.Format("2006-01"), p.Sites, p.BlockRate*100)
		}
		fmt.Println()
	}

	// The paper's specific anchors.
	for _, std := range []string{"AJAX", "H-P", "SLC", "V"} {
		for _, p := range points {
			if string(p.Standard) == std {
				fmt.Printf("anchor %-4s: introduced %s, %d sites\n",
					std, p.Introduced.Date.Format("2006-01-02"), p.Sites)
			}
		}
	}
}
